"""Shared fixtures: hand-built micro systems and seeded small systems.

Two kinds of test substrate:

* ``micro_*`` — a fully hand-constructed 3-node overlay with known delays,
  capacities, and components, for tests that assert exact numbers;
* ``small_system`` — a seeded end-to-end build (60 routers, 12 nodes) for
  integration tests that need the full stack but not paper scale.
"""

from __future__ import annotations

import random

import pytest

from repro.allocation.allocator import ResourceAllocator
from repro.core.composer import CompositionContext
from repro.discovery.deployment import ComponentDeployer, DeploymentProfile
from repro.discovery.registry import ComponentRegistry
from repro.model.component import Component
from repro.model.function_graph import FunctionGraph
from repro.model.functions import FunctionCatalog
from repro.model.node import Node
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSVector
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.simulation.system import SystemConfig, build_system
from repro.state.global_state import GlobalStateManager
from repro.state.local_state import LocalStateProvider
from repro.topology.overlay import OverlayLink, OverlayNetwork
from repro.topology.routing import OverlayRouter


def rv(cpu: float, memory: float) -> ResourceVector:
    """Shorthand resource vector on the default schema."""
    return ResourceVector(DEFAULT_RESOURCE_SCHEMA, [cpu, memory])


def qv(delay: float, loss: float = 0.0) -> QoSVector:
    """Shorthand QoS vector on the default schema."""
    return QoSVector(DEFAULT_QOS_SCHEMA, [delay, loss])


def make_component(
    component_id: int,
    function,
    node_id: int,
    delay: float = 10.0,
    loss: float = 0.001,
    max_input_rate: float = 1000.0,
    output_format: str = "fmt0",
    input_formats=None,
) -> Component:
    return Component(
        component_id=component_id,
        function=function,
        node_id=node_id,
        qos=qv(delay, loss),
        input_formats=(
            function.input_formats if input_formats is None else frozenset(input_formats)
        ),
        output_format=output_format,
        max_input_rate=max_input_rate,
    )


@pytest.fixture
def catalog():
    return FunctionCatalog(size=8, num_formats=2)


@pytest.fixture
def micro_network(catalog):
    """Three nodes in a triangle with asymmetric delays and capacities.

    * v0: 100 cpu / 1000 MB, hosts c0 (function 0)
    * v1:  50 cpu /  500 MB, hosts c1 (function 1)
    * v2: 100 cpu / 1000 MB, hosts c2 (function 1)  — less loaded twin of c1
    * e0: v0-v1 delay 10 ms, e1: v1-v2 delay 10 ms, e2: v0-v2 delay 25 ms
    """
    nodes = [
        Node(0, router_id=0, capacity=rv(100, 1000)),
        Node(1, router_id=1, capacity=rv(50, 500)),
        Node(2, router_id=2, capacity=rv(100, 1000)),
    ]
    links = [
        OverlayLink(0, 0, 1, delay_ms=10.0, loss_rate=0.001, capacity_kbps=10_000.0),
        OverlayLink(1, 1, 2, delay_ms=10.0, loss_rate=0.001, capacity_kbps=10_000.0),
        OverlayLink(2, 0, 2, delay_ms=25.0, loss_rate=0.002, capacity_kbps=10_000.0),
    ]
    network = OverlayNetwork(nodes, links)
    components = [
        make_component(0, catalog[0], 0),
        make_component(1, catalog[1], 1),
        make_component(2, catalog[1], 2),
    ]
    for component in components:
        network.node(component.node_id).host(component)
    return network


@pytest.fixture
def micro_registry(micro_network):
    registry = ComponentRegistry()
    for node in micro_network.nodes:
        for component in node.components:
            registry.register(component)
    return registry


@pytest.fixture
def micro_router(micro_network):
    return OverlayRouter(micro_network)


@pytest.fixture
def micro_context(micro_network, micro_router, micro_registry):
    global_state = GlobalStateManager(micro_network, threshold_fraction=0.1)
    return CompositionContext(
        network=micro_network,
        router=micro_router,
        registry=micro_registry,
        allocator=ResourceAllocator(micro_network, micro_router),
        global_state=global_state,
        local_state=LocalStateProvider(micro_network),
        rng=random.Random(7),
    )


def make_request(
    graph: FunctionGraph,
    request_id: int = 0,
    delay_budget: float = 200.0,
    loss_budget: float = 0.2,
    cpu: float = 5.0,
    memory: float = 20.0,
    stream_rate: float = 100.0,
    kbps_per_unit: float = 2.0,
    duration: float = 600.0,
) -> StreamRequest:
    """A request over ``graph`` with uniform per-placement requirements."""
    return StreamRequest(
        request_id=request_id,
        function_graph=graph,
        qos_requirement=qv(delay_budget, loss_budget),
        node_requirements={i: rv(cpu, memory) for i in range(len(graph))},
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, kbps_per_unit
        ),
        stream_rate=stream_rate,
        duration=duration,
    )


@pytest.fixture
def micro_request(catalog):
    """A path request F0 → F1 matching the micro network's components."""
    graph = FunctionGraph.path([catalog[0], catalog[1]])
    return make_request(graph)


@pytest.fixture(scope="session")
def small_system():
    """A seeded end-to-end system small enough for fast integration tests.

    Session-scoped and therefore READ-ONLY: tests that mutate state must
    build their own via ``build_small_system()``.
    """
    return build_small_system()


def build_small_system(seed: int = 5, num_nodes: int = 12):
    config = SystemConfig(
        num_routers=60,
        num_nodes=num_nodes,
        neighbors_per_node=3,
        catalog_size=10,
        num_templates=6,
        template_path_length=(2, 3),
        deployment=DeploymentProfile(components_per_node=(1, 3)),
        seed=seed,
    )
    return build_system(config)
