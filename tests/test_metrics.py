"""Unit tests for metrics collection and reports."""

import pytest

from repro.simulation.metrics import MetricsCollector, RequestRecord, percentile


def record(
    request_id,
    success,
    probes=10,
    setup=3,
    t=0.0,
    reason=None,
    phi=None,
    latency=None,
):
    return RequestRecord(
        request_id=request_id,
        arrival_time=t,
        success=success,
        probe_messages=probes,
        setup_messages=setup if success else 0,
        explored=probes,
        phi=phi,
        failure_reason=reason,
        setup_latency_ms=latency,
    )


class TestCollector:
    def test_success_rate(self):
        collector = MetricsCollector()
        for i in range(4):
            collector.record(record(i, success=i % 2 == 0))
        assert collector.success_rate() == pytest.approx(0.5)
        assert collector.success_count() == 2

    def test_empty_success_rate_zero(self):
        assert MetricsCollector().success_rate() == 0.0

    def test_failure_reasons_tallied(self):
        collector = MetricsCollector()
        collector.record(record(0, False, reason="qos_violation"))
        collector.record(record(1, False, reason="qos_violation"))
        collector.record(record(2, False, reason="node_resources"))
        collector.record(record(3, True))
        assert collector.failure_reasons() == {
            "qos_violation": 2,
            "node_resources": 1,
        }


class TestWindows:
    def test_window_rates_reset_between_samples(self):
        collector = MetricsCollector()
        collector.record(record(0, True))
        collector.record(record(1, False))
        first = collector.close_window(300.0)
        assert first.success_rate == pytest.approx(0.5)
        assert first.requests == 2
        collector.record(record(2, True))
        second = collector.close_window(600.0)
        assert second.success_rate == 1.0
        assert second.requests == 1

    def test_empty_window_repeats_previous_rate(self):
        collector = MetricsCollector()
        collector.record(record(0, False))
        collector.close_window(300.0)
        idle = collector.close_window(600.0)
        assert idle.success_rate == 0.0
        assert idle.requests == 0

    def test_first_empty_window_is_full_success(self):
        collector = MetricsCollector()
        assert collector.close_window(300.0).success_rate == 1.0

    def test_probing_ratio_recorded(self):
        collector = MetricsCollector()
        sample = collector.close_window(300.0, probing_ratio=0.3)
        assert sample.probing_ratio == 0.3

    def test_boundary_request_counted_in_exactly_one_window(self):
        """A request recorded just before a window close belongs to that
        window and never to the next — records are flushed at close."""
        collector = MetricsCollector()
        collector.record(record(0, True, t=300.0))  # exactly on the boundary
        first = collector.close_window(300.0)
        second = collector.close_window(600.0)
        assert first.requests == 1
        assert second.requests == 0
        assert first.requests + second.requests == 1


class TestSLOSeries:
    def test_window_latency_percentiles(self):
        collector = MetricsCollector()
        for i, latency in enumerate([10.0, 20.0, 30.0, 40.0]):
            collector.record(record(i, True, latency=latency))
        sample = collector.close_window(300.0)
        assert sample.p50_setup_latency_ms == 20.0
        assert sample.p99_setup_latency_ms == 40.0

    def test_failed_requests_excluded_from_latency(self):
        collector = MetricsCollector()
        collector.record(record(0, True, latency=10.0))
        collector.record(record(1, False, reason="no_candidates"))
        sample = collector.close_window(300.0)
        assert sample.p50_setup_latency_ms == 10.0

    def test_admission_pressure_counts_contention_only(self):
        collector = MetricsCollector()
        collector.record(record(0, False, reason="probes_dropped"))
        collector.record(record(1, False, reason="admission_race"))
        collector.record(record(2, False, reason="no_candidates"))  # infeasible
        collector.record(record(3, True, latency=5.0))
        sample = collector.close_window(300.0)
        assert sample.admission_pressure == pytest.approx(0.5)

    def test_empty_window_does_not_carry_slo_series(self):
        """success_rate carries over an idle window (legacy Fig. 8
        behaviour) but the new SLO fields must reset: 0 requests, None
        percentiles, 0 pressure — never the previous window's values."""
        collector = MetricsCollector()
        collector.record(record(0, True, latency=50.0))
        collector.record(record(1, False, reason="probes_dropped"))
        busy = collector.close_window(300.0)
        assert busy.p50_setup_latency_ms == 50.0
        assert busy.admission_pressure == pytest.approx(0.5)
        idle = collector.close_window(600.0)
        assert idle.success_rate == busy.success_rate  # legacy carry holds
        assert idle.requests == 0
        assert idle.p50_setup_latency_ms is None
        assert idle.p99_setup_latency_ms is None
        assert idle.admission_pressure == 0.0

    def test_gauges_recorded_per_window(self):
        collector = MetricsCollector()
        sample = collector.close_window(
            300.0, open_sessions=12, transient_reservations=3
        )
        assert sample.open_sessions == 12
        assert sample.transient_reservations == 3
        bare = collector.close_window(600.0)
        assert bare.open_sessions is None
        assert bare.transient_reservations is None

    def test_report_level_slo_summaries(self):
        collector = MetricsCollector()
        collector.record(record(0, True, latency=10.0))
        collector.record(record(1, True, latency=30.0))
        collector.record(record(2, False, reason="admission_race"))
        collector.close_window(300.0, open_sessions=5, transient_reservations=2)
        collector.record(record(3, False, reason="no_candidates"))
        collector.close_window(600.0, open_sessions=9, transient_reservations=0)
        report = collector.build_report("ACP", 600.0)
        assert report.p50_setup_latency_ms == 10.0
        assert report.p99_setup_latency_ms == 30.0
        assert report.admission_pressure == pytest.approx(0.25)
        assert report.peak_open_sessions == 9
        assert report.peak_transient_reservations == 2

    def test_report_slo_defaults_without_latency(self):
        collector = MetricsCollector()
        collector.record(record(0, True))
        report = collector.build_report("ACP", 60.0)
        assert report.p50_setup_latency_ms is None
        assert report.p99_setup_latency_ms is None
        assert report.admission_pressure == 0.0
        assert report.peak_open_sessions == 0


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank_single(self):
        assert percentile([42.0], 0.5) == 42.0
        assert percentile([42.0], 0.99) == 42.0

    def test_nearest_rank_is_an_observed_value(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert percentile(values, q) in values

    def test_median_and_tail(self):
        values = list(map(float, range(1, 101)))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], 1.5)


class TestReport:
    def test_aggregates(self):
        collector = MetricsCollector()
        collector.record(record(0, True, probes=10, phi=1.5))
        collector.record(record(1, True, probes=20, phi=2.5))
        collector.record(record(2, False, probes=5, reason="qos_violation"))
        report = collector.build_report(
            "ACP", duration_s=600.0, state_update_messages=60,
            aggregation_messages=30,
        )
        assert report.total_requests == 3
        assert report.successes == 2
        assert report.success_rate == pytest.approx(2 / 3)
        assert report.probe_messages == 35
        assert report.mean_phi == pytest.approx(2.0)
        assert report.duration_min == 10.0
        assert report.probe_messages_per_min == pytest.approx(3.5)
        assert report.state_messages_per_min == pytest.approx(9.0)
        assert report.overhead_per_min == pytest.approx(12.5)

    def test_mean_phi_none_without_successes(self):
        collector = MetricsCollector()
        collector.record(record(0, False, reason="x"))
        report = collector.build_report("ACP", 60.0)
        assert report.mean_phi is None

    def test_zero_requests(self):
        report = MetricsCollector().build_report("ACP", 60.0)
        assert report.success_rate == 0.0
        assert report.total_requests == 0
