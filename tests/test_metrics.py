"""Unit tests for metrics collection and reports."""

import pytest

from repro.simulation.metrics import MetricsCollector, RequestRecord


def record(request_id, success, probes=10, setup=3, t=0.0, reason=None, phi=None):
    return RequestRecord(
        request_id=request_id,
        arrival_time=t,
        success=success,
        probe_messages=probes,
        setup_messages=setup if success else 0,
        explored=probes,
        phi=phi,
        failure_reason=reason,
    )


class TestCollector:
    def test_success_rate(self):
        collector = MetricsCollector()
        for i in range(4):
            collector.record(record(i, success=i % 2 == 0))
        assert collector.success_rate() == pytest.approx(0.5)
        assert collector.success_count() == 2

    def test_empty_success_rate_zero(self):
        assert MetricsCollector().success_rate() == 0.0

    def test_failure_reasons_tallied(self):
        collector = MetricsCollector()
        collector.record(record(0, False, reason="qos_violation"))
        collector.record(record(1, False, reason="qos_violation"))
        collector.record(record(2, False, reason="node_resources"))
        collector.record(record(3, True))
        assert collector.failure_reasons() == {
            "qos_violation": 2,
            "node_resources": 1,
        }


class TestWindows:
    def test_window_rates_reset_between_samples(self):
        collector = MetricsCollector()
        collector.record(record(0, True))
        collector.record(record(1, False))
        first = collector.close_window(300.0)
        assert first.success_rate == pytest.approx(0.5)
        assert first.requests == 2
        collector.record(record(2, True))
        second = collector.close_window(600.0)
        assert second.success_rate == 1.0
        assert second.requests == 1

    def test_empty_window_repeats_previous_rate(self):
        collector = MetricsCollector()
        collector.record(record(0, False))
        collector.close_window(300.0)
        idle = collector.close_window(600.0)
        assert idle.success_rate == 0.0
        assert idle.requests == 0

    def test_first_empty_window_is_full_success(self):
        collector = MetricsCollector()
        assert collector.close_window(300.0).success_rate == 1.0

    def test_probing_ratio_recorded(self):
        collector = MetricsCollector()
        sample = collector.close_window(300.0, probing_ratio=0.3)
        assert sample.probing_ratio == 0.3


class TestReport:
    def test_aggregates(self):
        collector = MetricsCollector()
        collector.record(record(0, True, probes=10, phi=1.5))
        collector.record(record(1, True, probes=20, phi=2.5))
        collector.record(record(2, False, probes=5, reason="qos_violation"))
        report = collector.build_report(
            "ACP", duration_s=600.0, state_update_messages=60,
            aggregation_messages=30,
        )
        assert report.total_requests == 3
        assert report.successes == 2
        assert report.success_rate == pytest.approx(2 / 3)
        assert report.probe_messages == 35
        assert report.mean_phi == pytest.approx(2.0)
        assert report.duration_min == 10.0
        assert report.probe_messages_per_min == pytest.approx(3.5)
        assert report.state_messages_per_min == pytest.approx(9.0)
        assert report.overhead_per_min == pytest.approx(12.5)

    def test_mean_phi_none_without_successes(self):
        collector = MetricsCollector()
        collector.record(record(0, False, reason="x"))
        report = collector.build_report("ACP", 60.0)
        assert report.mean_phi is None

    def test_zero_requests(self):
        report = MetricsCollector().build_report("ACP", 60.0)
        assert report.success_rate == 0.0
        assert report.total_requests == 0
