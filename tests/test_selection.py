"""Unit tests for per-hop candidate selection (Eqs. 6-10)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.selection import (
    ScoredCandidate,
    congestion_value,
    probe_budget,
    qualification_failure,
    risk_value,
    select_best,
)
from tests.conftest import make_component, qv, rv


class TestRiskValue:
    def test_max_over_metrics(self):
        # delay at 50% of budget, loss at 80% of budget
        requirement = qv(100.0, 0.1)
        loss_at_80_percent = 1 - (1 - 0.1) ** 0.8
        accumulated = qv(50.0, loss_at_80_percent)
        assert risk_value(accumulated, requirement) == pytest.approx(0.8, rel=1e-6)

    def test_violation_exceeds_one(self):
        assert risk_value(qv(150.0, 0.0), qv(100.0, 0.1)) > 1.0

    def test_zero_accumulation_zero_risk(self):
        assert risk_value(qv(0.0, 0.0), qv(100.0, 0.1)) == 0.0


class TestCongestionValue:
    def test_matches_required_over_available(self):
        value = congestion_value(rv(5, 20), rv(50, 200))
        assert value == pytest.approx(5 / 50 + 20 / 200)

    def test_includes_bandwidth_terms(self):
        value = congestion_value(rv(0, 0), rv(10, 10), [100.0], [1000.0])
        assert value == pytest.approx(0.1)

    def test_multiple_links_for_joins(self):
        value = congestion_value(rv(0, 0), rv(10, 10), [100.0, 200.0], [1000.0, 1000.0])
        assert value == pytest.approx(0.3)

    def test_saturated_link_inf(self):
        assert math.isinf(congestion_value(rv(0, 0), rv(1, 1), [10.0], [0.0]))

    def test_zero_bandwidth_requirement_free(self):
        assert congestion_value(rv(0, 0), rv(1, 1), [0.0], [0.0]) == 0.0


class TestQualification:
    def test_qualified(self):
        assert (
            qualification_failure(
                qv(50.0, 0.01), qv(100.0, 0.1), rv(5, 20), rv(50, 200), [100.0], [500.0]
            )
            is None
        )

    def test_eq6_qos(self):
        assert (
            qualification_failure(
                qv(150.0, 0.01), qv(100.0, 0.1), rv(5, 20), rv(50, 200)
            )
            == "qos"
        )

    def test_eq7_node_resources(self):
        assert (
            qualification_failure(
                qv(10.0, 0.0), qv(100.0, 0.1), rv(60, 20), rv(50, 200)
            )
            == "node_resources"
        )

    def test_eq8_link_bandwidth(self):
        assert (
            qualification_failure(
                qv(10.0, 0.0), qv(100.0, 0.1), rv(5, 20), rv(50, 200), [600.0], [500.0]
            )
            == "link_bandwidth"
        )


def scored(component_id, risk, congestion, catalog):
    return ScoredCandidate(
        candidate=make_component(component_id, catalog[0], component_id),
        risk=risk,
        congestion=congestion,
        accumulated_qos=qv(0.0, 0.0),
    )


class TestSelectBest:
    def test_lower_risk_wins(self, catalog):
        pool = [scored(0, 0.9, 0.1, catalog), scored(1, 0.2, 0.9, catalog)]
        best = select_best(pool, 1)
        assert best[0].candidate.component_id == 1

    def test_similar_risk_breaks_on_congestion(self, catalog):
        pool = [scored(0, 0.50, 0.9, catalog), scored(1, 0.52, 0.1, catalog)]
        best = select_best(pool, 1, risk_tie_epsilon=0.05)
        assert best[0].candidate.component_id == 1

    def test_distinct_risk_buckets_ignore_congestion(self, catalog):
        pool = [scored(0, 0.2, 0.9, catalog), scored(1, 0.8, 0.0, catalog)]
        best = select_best(pool, 1, risk_tie_epsilon=0.05)
        assert best[0].candidate.component_id == 0

    def test_limit_respected(self, catalog):
        pool = [scored(i, 0.1 * i, 0.0, catalog) for i in range(10)]
        assert len(select_best(pool, 3)) == 3

    def test_zero_limit(self, catalog):
        assert select_best([scored(0, 0.1, 0.1, catalog)], 0) == []

    def test_deterministic_tiebreak_on_id(self, catalog):
        pool = [scored(5, 0.5, 0.5, catalog), scored(2, 0.5, 0.5, catalog)]
        best = select_best(pool, 1)
        assert best[0].candidate.component_id == 2


class TestProbeBudget:
    def test_paper_example(self):
        """α = 0.3 with ten candidates probes 0.3 × 10 = 3."""
        assert probe_budget(0.3, 10) == 3

    def test_ceiling(self):
        assert probe_budget(0.3, 5) == 2  # ceil(1.5)

    def test_at_least_one(self):
        assert probe_budget(0.01, 3) == 1

    def test_full_ratio_probes_all(self):
        assert probe_budget(1.0, 7) == 7

    def test_zero_candidates(self):
        assert probe_budget(0.5, 0) == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError, match="probing ratio"):
            probe_budget(0.0, 5)
        with pytest.raises(ValueError, match="probing ratio"):
            probe_budget(1.1, 5)

    def test_negative_candidates(self):
        with pytest.raises(ValueError, match="negative"):
            probe_budget(0.5, -1)


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.integers(min_value=1, max_value=1000),
)
def test_probe_budget_bounds(ratio, count):
    budget = probe_budget(ratio, count)
    assert 1 <= budget <= count
    assert budget >= ratio * count - 1e-9  # never probes fewer than α·k
