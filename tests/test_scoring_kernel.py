"""Scoring-kernel backend equivalence and the bounded scorer row cache.

The compiled (numba) backend's contract is *byte-identity*: every kernel
output array equals the numpy reference's bit for bit, so composition
decisions cannot depend on which backend is installed.  The numpy-level
tests here run everywhere; the numba differential tests skip cleanly when
the optional ``compiled`` extra is absent (the tier-1 environment).

Also covered: backend resolution (``auto``/``numpy``/``numba``), the
config plumbing from ``SystemConfig`` to ``FastScorer``, the kernel's
numpy path against a hand-rolled pure-python scalar loop, and the
LRU-bounded ``_bandwidth_rows`` cache making identical decisions at a
tiny bound.
"""

import math
import random

import numpy as np
import pytest

from repro.core import ACPComposer
from repro.core.scoring_kernel import (
    NUMBA_AVAILABLE,
    SCORING_KERNELS,
    get_scoring_kernel,
    resolve_scoring_kernel,
)
from repro.experiments import EVALUATION_DEPLOYMENT
from repro.simulation import SystemConfig, build_system
from tests.test_fastscore import (
    assert_identical_decisions,
    outcome_signature,
    requests_for,
)

CONFIG = SystemConfig(
    num_routers=240, num_nodes=100, deployment=EVALUATION_DEPLOYMENT, seed=7
)


# -- resolution ---------------------------------------------------------------


class TestResolution:
    def test_numpy_always_resolves(self):
        assert resolve_scoring_kernel("numpy") == "numpy"

    def test_auto_resolves_to_an_available_backend(self):
        resolved = resolve_scoring_kernel("auto")
        assert resolved in ("numpy", "numba")
        if not NUMBA_AVAILABLE:
            assert resolved == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scoring kernel"):
            resolve_scoring_kernel("cython")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_explicit_numba_errors_when_absent(self):
        with pytest.raises(RuntimeError, match="numba is not installed"):
            resolve_scoring_kernel("numba")

    def test_build_system_rejects_unknown_kernel(self):
        config = SystemConfig(
            num_routers=60, num_nodes=10, seed=1, scoring_kernel="bogus"
        )
        with pytest.raises(ValueError, match="unknown scoring kernel"):
            build_system(config)

    def test_config_threads_kernel_to_scorer(self):
        config = SystemConfig(
            num_routers=240,
            num_nodes=100,
            deployment=EVALUATION_DEPLOYMENT,
            seed=2,
            scoring_kernel="numpy",
        )
        system = build_system(config)
        context = system.composition_context(rng=random.Random(1))
        assert context.fast_scorer().kernel.name == "numpy"

    def test_kernel_list_is_stable(self):
        assert SCORING_KERNELS == ("auto", "numpy", "numba")


# -- numpy kernel vs a pure-python scalar loop --------------------------------


def scalar_through_qos(out_delay, out_loss, link_delay, link_loss, acc_d, acc_l):
    probes, candidates = link_delay.shape
    delay = np.empty((probes, candidates))
    loss = np.empty((probes, candidates))
    for i in range(probes):
        for j in range(candidates):
            through_d = out_delay[i, 0] + link_delay[i, j]
            through_l = 1.0 - (1.0 - out_loss[i, 0]) * (1.0 - link_loss[i, j])
            if acc_d is None:
                delay[i, j] = through_d
                loss[i, j] = through_l
            else:
                delay[i, j] = max(acc_d[i, j], through_d)
                loss[i, j] = max(acc_l[i, j], through_l)
    return delay, loss


def scalar_congestion(requirement_values, available, bandwidth_rows, shape):
    total = np.zeros(shape)
    for i in range(shape[0]):
        for j in range(shape[1]):
            value = 0.0
            for dimension, required in enumerate(requirement_values):
                if required <= 0.0:
                    continue
                column = available[j, dimension]
                value += required / column if column > 0.0 else math.inf
            for bandwidth_required, rows in bandwidth_rows:
                if bandwidth_required <= 0.0:
                    continue
                row_value = rows[i, j]
                value += (
                    bandwidth_required / row_value if row_value > 0.0 else math.inf
                )
            total[i, j] = value
    return total


def random_batch(seed, probes=5, candidates=17):
    rng = np.random.default_rng(seed)
    out_delay = rng.uniform(0.0, 400.0, (probes, 1))
    out_loss = rng.uniform(0.0, 0.3, (probes, 1))
    link_delay = rng.uniform(0.0, 200.0, (probes, candidates))
    link_delay[rng.random((probes, candidates)) < 0.1] = np.inf
    link_loss = rng.uniform(0.0, 0.2, (probes, candidates))
    return out_delay, out_loss, link_delay, link_loss


KERNEL_NAMES = ["numpy"] + (["numba"] if NUMBA_AVAILABLE else [])


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("seed", range(5))
def test_through_qos_matches_scalar_loop(name, seed):
    kernel = get_scoring_kernel(name)
    out_delay, out_loss, link_delay, link_loss = random_batch(seed)
    first = kernel.through_qos(
        out_delay, out_loss, link_delay, link_loss, None, None
    )
    reference = scalar_through_qos(
        out_delay, out_loss, link_delay, link_loss, None, None
    )
    for got, want in zip(first, reference):
        np.testing.assert_array_equal(got, want)
    # second predecessor: the max fold
    out2, outl2, ld2, ll2 = random_batch(seed + 100)
    folded = kernel.through_qos(out2, outl2, ld2, ll2, first[0], first[1])
    reference2 = scalar_through_qos(out2, outl2, ld2, ll2, first[0], first[1])
    for got, want in zip(folded, reference2):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("seed", range(5))
def test_finalize_qos_matches_scalar_loop(name, seed):
    kernel = get_scoring_kernel(name)
    rng = np.random.default_rng(seed)
    acc_d = rng.uniform(0.0, 500.0, (4, 13))
    acc_l = rng.uniform(0.0, 0.4, (4, 13))
    cand_d = rng.uniform(0.0, 50.0, 13)
    cand_l = rng.uniform(0.0, 0.1, 13)
    got_d, got_l = kernel.finalize_qos(acc_d, acc_l, cand_d, cand_l)
    want_d = np.array(
        [[acc_d[i, j] + cand_d[j] for j in range(13)] for i in range(4)]
    )
    want_l = np.array(
        [
            [1.0 - (1.0 - acc_l[i, j]) * (1.0 - cand_l[j]) for j in range(13)]
            for i in range(4)
        ]
    )
    np.testing.assert_array_equal(got_d, want_d)
    np.testing.assert_array_equal(got_l, want_l)


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("seed", range(5))
def test_congestion_matches_scalar_loop(name, seed):
    kernel = get_scoring_kernel(name)
    rng = np.random.default_rng(seed)
    shape = (4, 11)
    requirement_values = (4.0, 25.0, 0.0)
    available = rng.uniform(-5.0, 100.0, (shape[1], len(requirement_values)))
    bandwidth_rows = [
        (180.0, rng.uniform(-10.0, 50_000.0, shape)),
        (0.0, rng.uniform(0.0, 1.0, shape)),
        (90.0, rng.uniform(-10.0, 50_000.0, shape)),
    ]
    got = kernel.congestion(requirement_values, available, bandwidth_rows, shape)
    want = scalar_congestion(
        requirement_values, available, bandwidth_rows, shape
    )
    np.testing.assert_array_equal(got, want)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="optional compiled extra absent")
class TestNumbaEndToEnd:
    """Full-system decision identity: compiled vs numpy vs scalar path."""

    def test_numba_and_numpy_decisions_identical(self):
        numpy_system = build_system(CONFIG)
        numba_system = build_system(
            SystemConfig(
                num_routers=240,
                num_nodes=100,
                deployment=EVALUATION_DEPLOYMENT,
                seed=7,
                scoring_kernel="numba",
            )
        )
        numpy_ctx = numpy_system.composition_context(rng=random.Random(11))
        numba_ctx = numba_system.composition_context(rng=random.Random(11))
        numpy_composer = ACPComposer(numpy_ctx, probing_ratio=0.3)
        numba_composer = ACPComposer(numba_ctx, probing_ratio=0.3)
        for req_np, req_nb in zip(
            requests_for(numpy_system, 30), requests_for(numba_system, 30)
        ):
            out_np = numpy_composer.compose(req_np)
            numpy_ctx.allocator.cancel_transient(req_np.request_id)
            out_nb = numba_composer.compose(req_nb)
            numba_ctx.allocator.cancel_transient(req_nb.request_id)
            assert outcome_signature(req_np, out_np) == outcome_signature(
                req_nb, out_nb
            ), f"backend decisions diverged on request {req_np.request_id}"

    def test_numba_kernel_selected_by_auto(self):
        assert resolve_scoring_kernel("auto") == "numba"


# -- bounded scorer row cache -------------------------------------------------


def test_tiny_row_cache_makes_identical_decisions():
    """A scorer limited to 2 cached bandwidth rows decides exactly like an
    unbounded one — evicted rows are re-derived value-identically."""
    bounded_system = build_system(
        SystemConfig(
            num_routers=240,
            num_nodes=100,
            deployment=EVALUATION_DEPLOYMENT,
            seed=7,
            scorer_row_cache_size=2,
        )
    )
    unbounded_system = build_system(
        SystemConfig(
            num_routers=240,
            num_nodes=100,
            deployment=EVALUATION_DEPLOYMENT,
            seed=7,
            scorer_row_cache_size=None,
        )
    )
    bounded_ctx = bounded_system.composition_context(rng=random.Random(11))
    unbounded_ctx = unbounded_system.composition_context(rng=random.Random(11))
    bounded = ACPComposer(bounded_ctx, probing_ratio=0.3)
    unbounded = ACPComposer(unbounded_ctx, probing_ratio=0.3)
    for req_a, req_b in zip(
        requests_for(bounded_system, 25), requests_for(unbounded_system, 25)
    ):
        out_a = bounded.compose(req_a)
        bounded_ctx.allocator.cancel_transient(req_a.request_id)
        out_b = unbounded.compose(req_b)
        unbounded_ctx.allocator.cancel_transient(req_b.request_id)
        assert outcome_signature(req_a, out_a) == outcome_signature(
            req_b, out_b
        )
    scorer = bounded_ctx.fast_scorer()
    assert len(scorer._bandwidth_rows) <= 2
    assert scorer._bandwidth_rows.evictions > 0


def test_vectorized_vs_scalar_with_explicit_numpy_kernel():
    """The existing fastscore contract holds with the kernel seam in
    place: the vectorised path (through the numpy kernel) and the scalar
    reference still make identical decisions."""
    system = build_system(
        SystemConfig(
            num_routers=240,
            num_nodes=100,
            deployment=EVALUATION_DEPLOYMENT,
            seed=7,
            scoring_kernel="numpy",
        )
    )
    context = system.composition_context(rng=random.Random(11))
    vec = ACPComposer(context, probing_ratio=0.3, vectorized=True)
    sca = ACPComposer(context, probing_ratio=0.3, vectorized=False)
    assert_identical_decisions(vec, sca, context, requests_for(system, 25))


def test_scorer_memory_footprint_reports_tables_and_rows():
    system = build_system(CONFIG)
    context = system.composition_context(rng=random.Random(11))
    composer = ACPComposer(context, probing_ratio=0.3)
    for request in requests_for(system, 5):
        composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
    footprint = context.fast_scorer().memory_footprint()
    assert footprint["tables"] > 0
    assert footprint["bandwidth_rows"] > 0
    assert footprint["total"] == footprint["tables"] + footprint["bandwidth_rows"]
