"""Unit tests for coarse-grain global state maintenance."""

import pytest

from repro.state.global_state import GlobalStateManager
from tests.conftest import rv


@pytest.fixture
def state(micro_network):
    return GlobalStateManager(micro_network, threshold_fraction=0.1)


class TestThresholdUpdates:
    def test_initial_snapshot_is_exact(self, micro_network, state):
        for node in micro_network.nodes:
            assert state.node_available(node.node_id) == node.available

    def test_small_drift_not_reported(self, micro_network, state):
        node = micro_network.node(0)  # capacity 100 cpu, threshold 10
        node.allocate(rv(5, 50))  # below both thresholds (10 cpu / 100 MB)
        assert state.node_available(0) == node.capacity  # stale
        assert state.node_update_messages == 0

    def test_large_drift_reported(self, micro_network, state):
        node = micro_network.node(0)
        node.allocate(rv(20, 10))  # 20 cpu > 10 cpu threshold
        assert state.node_available(0) == node.available
        assert state.node_update_messages == 1

    def test_accumulated_drift_eventually_reported(self, micro_network, state):
        node = micro_network.node(0)
        for _ in range(3):
            node.allocate(rv(4, 1))  # each step small, drift accumulates
        assert state.node_update_messages == 1
        assert state.node_available(0) == node.available

    def test_link_threshold(self, micro_network, state):
        link = micro_network.link(0)  # capacity 10000, threshold 1000
        link.allocate_bandwidth(900.0)
        assert state.link_available_kbps(0) == 10_000.0
        assert state.link_update_messages == 0
        link.allocate_bandwidth(200.0)  # cumulative drift 1100 > threshold
        assert state.link_available_kbps(0) == pytest.approx(8_900.0)
        assert state.link_update_messages == 1

    def test_total_update_messages(self, micro_network, state):
        micro_network.node(0).allocate(rv(20, 10))
        micro_network.link(0).allocate_bandwidth(2_000.0)
        assert state.total_update_messages == 2


class TestQueries:
    def test_virtual_link_bottleneck_over_stale_states(self, micro_network, state):
        micro_network.link(0).allocate_bandwidth(3_000.0)  # reported
        assert state.virtual_link_available_kbps([0, 1]) == pytest.approx(7_000.0)

    def test_virtual_link_empty_path_infinite(self, state):
        assert state.virtual_link_available_kbps([]) == float("inf")

    def test_max_drift_fraction(self, micro_network, state):
        assert state.max_drift_fraction() == 0.0
        micro_network.node(0).allocate(rv(5, 0))  # 5% cpu drift, unreported
        assert state.max_drift_fraction() == pytest.approx(0.05)

    def test_force_refresh(self, micro_network, state):
        micro_network.node(0).allocate(rv(5, 0))
        state.force_refresh()
        assert state.max_drift_fraction() == 0.0


class TestQuantization:
    def test_values_snap_to_buckets(self, micro_network):
        state = GlobalStateManager(
            micro_network, threshold_fraction=0.0, quantization_levels=4
        )
        node = micro_network.node(0)  # 100 cpu capacity
        node.allocate(rv(30, 0))  # available 70 -> nearest bucket of 25s = 75
        assert state.node_available(0)["cpu"] == pytest.approx(75.0)

    def test_quantized_value_never_exceeds_capacity(self, micro_network):
        state = GlobalStateManager(
            micro_network, threshold_fraction=0.0, quantization_levels=3
        )
        for node in micro_network.nodes:
            snapshot = state.node_available(node.node_id)
            assert all(
                s <= c + 1e-9
                for s, c in zip(snapshot.values, node.capacity.values)
            )

    def test_exact_mode_by_default(self, state):
        assert state.quantization_levels is None

    def test_invalid_levels_rejected(self, micro_network):
        with pytest.raises(ValueError, match="quantization_levels"):
            GlobalStateManager(micro_network, quantization_levels=0)


class TestValidation:
    def test_bad_threshold_rejected(self, micro_network):
        with pytest.raises(ValueError, match="threshold_fraction"):
            GlobalStateManager(micro_network, threshold_fraction=1.5)
