"""Unit tests for stream processing requests."""

import pytest

from repro.model.function_graph import FunctionGraph
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from tests.conftest import make_request, qv, rv


@pytest.fixture
def graph(catalog):
    return FunctionGraph.path([catalog[0], catalog[1], catalog[2]])


class TestValidation:
    def test_valid_request(self, graph):
        request = make_request(graph)
        assert request.end_time == request.arrival_time + request.duration

    def test_missing_node_requirement(self, graph):
        with pytest.raises(ValueError, match="node_requirements must cover"):
            StreamRequest(
                request_id=0,
                function_graph=graph,
                qos_requirement=qv(100, 0.1),
                node_requirements={0: rv(1, 1)},
                bandwidth_requirements=derive_bandwidth_requirements(graph, 10.0),
                stream_rate=10.0,
            )

    def test_missing_bandwidth_requirement(self, graph):
        with pytest.raises(ValueError, match="bandwidth_requirements must cover"):
            StreamRequest(
                request_id=0,
                function_graph=graph,
                qos_requirement=qv(100, 0.1),
                node_requirements={i: rv(1, 1) for i in range(3)},
                bandwidth_requirements={(0, 1): 10.0},
                stream_rate=10.0,
            )

    def test_negative_bandwidth_rejected(self, graph):
        bad = derive_bandwidth_requirements(graph, 10.0)
        bad[(0, 1)] = -1.0
        with pytest.raises(ValueError, match="negative bandwidth"):
            StreamRequest(
                request_id=0,
                function_graph=graph,
                qos_requirement=qv(100, 0.1),
                node_requirements={i: rv(1, 1) for i in range(3)},
                bandwidth_requirements=bad,
                stream_rate=10.0,
            )

    def test_nonpositive_stream_rate_rejected(self, graph):
        # rejected while deriving bandwidth requirements from the rate
        with pytest.raises(ValueError, match="positive"):
            make_request(graph, stream_rate=0.0)

    def test_nonpositive_duration_rejected(self, graph):
        with pytest.raises(ValueError, match="duration"):
            make_request(graph, duration=0.0)


class TestAccessors:
    def test_requirement_for(self, graph):
        request = make_request(graph, cpu=3.0, memory=7.0)
        assert request.requirement_for(1) == rv(3.0, 7.0)

    def test_bandwidth_for(self, graph):
        request = make_request(graph, stream_rate=100.0, kbps_per_unit=1.0)
        expected = graph.edge_rates(100.0)[(0, 1)]
        assert request.bandwidth_for((0, 1)) == pytest.approx(expected)


class TestDeriveBandwidth:
    def test_scales_with_kbps_per_unit(self, graph):
        single = derive_bandwidth_requirements(graph, 100.0, kbps_per_unit=1.0)
        double = derive_bandwidth_requirements(graph, 100.0, kbps_per_unit=2.0)
        for edge in graph.edges:
            assert double[edge] == pytest.approx(2 * single[edge])

    def test_follows_edge_rates(self, graph):
        requirements = derive_bandwidth_requirements(graph, 50.0, kbps_per_unit=3.0)
        rates = graph.edge_rates(50.0)
        for edge in graph.edges:
            assert requirements[edge] == pytest.approx(3.0 * rates[edge])
