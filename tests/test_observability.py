"""Tests for the observability layer (trace recorder, metrics registry,
JSONL export) and its wiring through the simulation stack.

The acceptance test at the bottom runs a full traced simulation and
asserts the trace *exactly* reconstructs the Fig. 8 series the report and
tuner hold — the trace is a faithful journal, not an approximation.
"""

import json
import random

import pytest

from repro.core.acp import ACPComposer
from repro.core.tuning import ProbingRatioTuner
from repro.observability import (
    NULL_RECORDER,
    REGISTRY_KIND,
    MetricsRegistry,
    NullRecorder,
    TraceRecorder,
    format_trace_summary,
    read_trace,
    summarize_trace,
    write_jsonl,
)
from repro.simulation.failures import FailureInjector
from repro.simulation.simulator import StreamProcessingSimulator
from repro.simulation.workload import QOS_LEVELS, RateSchedule, WorkloadGenerator
from tests.conftest import build_small_system


class TestRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2.5)
        assert registry.counter("x").value == pytest.approx(3.5)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(-4.0)
        assert registry.gauge("g").value == -4.0

    def test_histogram_streaming_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [1.0, 3.0, 2.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        # snapshots must be JSON-serialisable (the exporter embeds them)
        json.dumps(snapshot)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        recorder.emit("anything", time=1.0, detail="x")
        recorder.inc("counter")
        recorder.set_gauge("gauge", 1.0)
        recorder.observe("histogram", 2.0)
        recorder.bind_clock(lambda: 99.0)
        with recorder.phase("compose"):
            pass

    def test_shared_singleton(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert NULL_RECORDER.enabled is False


class TestTraceRecorder:
    def test_emit_collects_events(self):
        recorder = TraceRecorder()
        assert recorder.enabled is True
        recorder.emit("a", time=1.0, value=10)
        recorder.emit("b", time=2.0)
        assert [event.kind for event in recorder.events] == ["a", "b"]
        assert recorder.events[0].fields == {"value": 10}
        assert [e.kind for e in recorder.events_of("a")] == ["a"]

    def test_clock_binding_stamps_events(self):
        recorder = TraceRecorder()
        recorder.emit("before")
        assert recorder.events[0].time == 0.0
        now = {"t": 123.5}
        recorder.bind_clock(lambda: now["t"])
        recorder.emit("after")
        assert recorder.events[1].time == 123.5
        # an explicit time always wins over the clock
        recorder.emit("explicit", time=7.0)
        assert recorder.events[2].time == 7.0

    def test_metrics_delegate_to_registry(self):
        recorder = TraceRecorder()
        recorder.inc("hits", 2)
        recorder.set_gauge("level", 0.5)
        recorder.observe("latency", 1.5)
        snapshot = recorder.registry.snapshot()
        assert snapshot["counters"]["hits"] == 2
        assert snapshot["gauges"]["level"] == 0.5
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_phase_timer_records_histogram(self):
        recorder = TraceRecorder()
        with recorder.phase("work"):
            sum(range(100))
        histogram = recorder.registry.histogram("phase.work")
        assert histogram.count == 1
        assert histogram.total >= 0.0


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit("a", time=1.0, value=10)
        recorder.emit("b", time=2.0, label="x")
        recorder.inc("counter", 3)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(path, recorder)
        records = read_trace(path)
        assert count == len(records) == 3  # 2 events + registry
        assert records[0] == {"t": 1.0, "kind": "a", "value": 10}
        assert records[1] == {"t": 2.0, "kind": "b", "label": "x"}
        assert records[-1]["kind"] == REGISTRY_KIND
        assert records[-1]["counters"]["counter"] == 3

    def test_summarize_and_format(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit("probe.start", time=0.0, request_id=1)
        recorder.emit("probe.commit", time=0.1, request_id=1, phi=2.0)
        recorder.emit(
            "window.close", time=300.0, success_rate=0.5, requests=2,
            probing_ratio=0.3, carried=False,
        )
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, recorder)
        summary = summarize_trace(read_trace(path))
        assert summary["events"] == 3
        assert summary["kinds"]["probe.start"] == 1
        assert summary["composes"] == 1
        assert summary["commits"] == 1
        assert len(summary["windows"]) == 1
        text = format_trace_summary(summary)
        assert "trace: 3 events" in text
        assert "sampling windows" in text


class TestIdleWindowRegression:
    def test_idle_window_does_not_feed_tuner(self):
        """An idle sampling window carries the previous rate forward for
        the Fig. 8 series; feeding that carried value to the tuner would
        register phantom profile points (and spurious re-profiles)."""
        system = build_small_system(seed=3, num_nodes=12)
        workload = WorkloadGenerator(
            system.templates,
            RateSchedule.constant(10.0),
            qos_level=QOS_LEVELS["normal"],
            num_client_routers=system.config.num_routers,
            seed=7,
        )
        composer = ACPComposer(
            system.composition_context(rng=random.Random(3)),
            probing_ratio=0.3,
        )
        tuner = ProbingRatioTuner(target_success_rate=0.9)
        simulator = StreamProcessingSimulator(
            system, composer, workload, sampling_period_s=300.0, tuner=tuner
        )
        # close a window with zero requests recorded
        simulator._on_sampling_tick()
        assert simulator.metrics.window_samples[-1].requests == 0
        assert tuner.samples == ()
        assert tuner.profile == {}
        # a busy window still reaches the tuner
        from repro.simulation.metrics import RequestRecord

        simulator.metrics.record(
            RequestRecord(
                request_id=0, arrival_time=0.0, success=True,
                probe_messages=1, setup_messages=1, explored=1,
            )
        )
        simulator._on_sampling_tick()
        assert len(tuner.samples) == 1
        assert tuner.samples[0].success_rate == 1.0


def run_traced_simulation():
    recorder = TraceRecorder()
    system = build_small_system(seed=4, num_nodes=12)
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.constant(20.0),
        qos_level=QOS_LEVELS["normal"],
        num_client_routers=system.config.num_routers,
        seed=54,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(4)), probing_ratio=0.5
    )
    tuner = ProbingRatioTuner(target_success_rate=0.9)
    failures = FailureInjector(
        system.network, system.router, fail_probability=0.02,
        rng=random.Random(9), period_s=120.0,
    )
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=300.0,
        tuner=tuner, failures=failures, recorder=recorder,
    )
    report = simulator.run(900.0)
    return recorder, report, tuner


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_traced_simulation()

    def test_trace_reconstructs_window_series(self, traced):
        """Acceptance: the window.close events reproduce the report's
        Fig. 8 success-rate series exactly — same times, same rates, same
        request counts, same probing ratios."""
        recorder, report, _ = traced
        from_trace = [
            (e.time, e.fields["success_rate"], e.fields["requests"],
             e.fields["probing_ratio"])
            for e in recorder.events_of("window.close")
        ]
        from_report = [
            (w.time, w.success_rate, w.requests, w.probing_ratio)
            for w in report.window_samples
        ]
        assert from_trace == from_report
        assert len(from_trace) > 0

    def test_trace_reconstructs_tuner_series(self, traced):
        """Acceptance: tuner.decision events reproduce the tuner's α(t)
        sample series exactly."""
        recorder, _, tuner = traced
        from_trace = [
            (e.time, e.fields["ratio"], e.fields["measured"],
             e.fields["reprofiled"])
            for e in recorder.events_of("tuner.decision")
        ]
        from_tuner = [
            (s.time, s.ratio, s.success_rate, s.reprofiled)
            for s in tuner.samples
        ]
        assert from_trace == from_tuner
        assert len(from_trace) > 0

    def test_probe_lifecycle_events_consistent(self, traced):
        recorder, report, _ = traced
        starts = recorder.events_of("probe.start")
        commits = recorder.events_of("probe.commit")
        fails = recorder.events_of("probe.fail")
        assert len(starts) == report.total_requests
        assert len(commits) == report.successes
        assert len(commits) + len(fails) == len(starts)
        # per-level events carry the wavefront shape
        for event in recorder.events_of("probe.level"):
            assert event.fields["selected"] <= event.fields["budget"]

    def test_session_and_infrastructure_events_present(self, traced):
        recorder, report, _ = traced
        kinds = {event.kind for event in recorder.events}
        assert "sim.start" in kinds and "sim.end" in kinds
        assert len(recorder.events_of("session.open")) == report.successes
        counters = recorder.registry.snapshot()["counters"]
        assert counters.get("fastscore.table_hit", 0) > 0
        assert counters.get("probe.messages", 0) > 0

    def test_events_time_ordered(self, traced):
        recorder, _, _ = traced
        times = [event.time for event in recorder.events]
        assert times == sorted(times)

    def test_simulation_unaffected_by_tracing(self):
        """A traced run and a null-recorder run of the same spec produce
        identical reports — observation does not perturb the system."""
        _, traced_report, _ = run_traced_simulation()
        system = build_small_system(seed=4, num_nodes=12)
        workload = WorkloadGenerator(
            system.templates,
            RateSchedule.constant(20.0),
            qos_level=QOS_LEVELS["normal"],
            num_client_routers=system.config.num_routers,
            seed=54,
        )
        composer = ACPComposer(
            system.composition_context(rng=random.Random(4)),
            probing_ratio=0.5,
        )
        tuner = ProbingRatioTuner(target_success_rate=0.9)
        failures = FailureInjector(
            system.network, system.router, fail_probability=0.02,
            rng=random.Random(9), period_s=120.0,
        )
        simulator = StreamProcessingSimulator(
            system, composer, workload, sampling_period_s=300.0,
            tuner=tuner, failures=failures,
        )
        null_report = simulator.run(900.0)
        assert null_report.total_requests == traced_report.total_requests
        assert null_report.successes == traced_report.successes
        assert null_report.window_samples == traced_report.window_samples
        assert null_report.probe_messages == traced_report.probe_messages
