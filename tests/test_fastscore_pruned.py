"""Locality-pruned candidate scoring: decision identity and fallback.

The pruning contract has three legs, each pinned here:

* **k >= N is the full scan.**  Whenever the neighbourhood covers the
  whole overlay, the pruned gather excludes exactly the candidates the
  full scan masks as unreachable, every gathered float is byte-identical
  (bounded trees are prefixes of the router's trees), and pool order is
  preserved — so composition decisions are *identical*, hypothesis-swept
  over neighbourhood sizes, probing ratios, and QoS tightness.
* **Aggressive pruning trades scan work, not success.**  A pruned level
  that qualifies nothing deterministically widens and re-scores; with a
  tiny k the widen counters spin but the success count matches the full
  scan's.
* **The default config is untouched.**  ``candidate_prune_k=None`` never
  constructs a neighbourhood index, and a fig7 cell replays byte-identical
  to the PR 6 tree (values below were generated at the PR 6 tip and are
  reproduced by today's default path).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ACPComposer
from repro.experiments import EVALUATION_DEPLOYMENT, run_fig7
from repro.experiments.config import ExperimentScale
from repro.simulation import SystemConfig, build_system
from tests.test_fastscore import outcome_signature, requests_for

CONFIG = SystemConfig(
    num_routers=240, num_nodes=100, deployment=EVALUATION_DEPLOYMENT, seed=7
)

_SYSTEM = None


def shared_system():
    """One built system reused across examples (state is per-context)."""
    global _SYSTEM
    if _SYSTEM is None:
        _SYSTEM = build_system(CONFIG)
    return _SYSTEM


def run_signatures(prune_k, ratio=0.3, qos=(420.0, 0.25), count=20):
    """Outcome signatures of an ACP stream at a given prune setting.

    The context is rebuilt per run (fresh rng, fresh scorer); the prune
    size is set directly on it, which is exactly what
    ``composition_context`` does after resolving the config spec.
    """
    system = shared_system()
    context = system.composition_context(rng=random.Random(11))
    context.candidate_prune_k = prune_k
    composer = ACPComposer(context, probing_ratio=ratio)
    signatures = []
    for request in requests_for(system, count, qos=qos):
        outcome = composer.compose(request)
        signatures.append(outcome_signature(request, outcome))
        context.allocator.cancel_transient(request.request_id)
    index = context._neighborhood_index
    if index is not None:
        index.close()
    return signatures, context


class TestDecisionIdentityAtFullCoverage:
    def test_k_equal_n_identical(self):
        full, _ = run_signatures(None)
        pruned, context = run_signatures(100)
        assert full == pruned
        assert context.fast_scorer().widen_retries == 0

    def test_k_above_n_identical_tight_qos(self):
        full, _ = run_signatures(None, ratio=0.5, qos=(180.0, 0.08))
        pruned, _ = run_signatures(250, ratio=0.5, qos=(180.0, 0.08))
        assert full == pruned

    @given(
        k=st.integers(min_value=100, max_value=400),
        ratio=st.sampled_from([0.2, 0.5, 1.0]),
        tight=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_hypothesis_k_ge_n_decision_identical(self, k, ratio, tight):
        qos = (200.0, 0.1) if tight else (420.0, 0.25)
        full, _ = run_signatures(None, ratio=ratio, qos=qos, count=8)
        pruned, _ = run_signatures(k, ratio=ratio, qos=qos, count=8)
        assert full == pruned


class TestWidenFallback:
    def test_aggressive_prune_preserves_success_via_widening(self):
        full, _ = run_signatures(None, count=30)
        pruned, context = run_signatures(8, count=30)
        assert context.fast_scorer().widen_retries > 0
        assert sum(s[0] for s in pruned) == sum(s[0] for s in full)

    def test_widen_counter_lands_in_traces(self):
        from repro.observability import TraceRecorder

        system = shared_system()
        recorder = TraceRecorder()
        context = system.composition_context(
            rng=random.Random(11), recorder=recorder
        )
        context.candidate_prune_k = 8
        composer = ACPComposer(context, probing_ratio=0.3)
        for request in requests_for(system, 10):
            composer.compose(request)
            context.allocator.cancel_transient(request.request_id)
        counters = recorder.registry.snapshot()["counters"]
        assert counters.get("fastscore.widen_retries", 0) > 0
        assert counters.get("neighborhood.solve", 0) > 0
        context._neighborhood_index.close()


class TestDefaultPathUntouched:
    def test_default_config_builds_no_index(self):
        _, context = run_signatures(None, count=5)
        assert context._neighborhood_index is None

    def test_config_resolves_auto_spec(self):
        system = shared_system()
        assert system.composition_context().candidate_prune_k is None
        auto = build_system(
            SystemConfig(
                num_routers=240,
                num_nodes=100,
                deployment=EVALUATION_DEPLOYMENT,
                seed=7,
                candidate_prune_k="auto",
            )
        )
        # auto floors at 256, capped at N=100: full coverage at paper scale
        assert auto.composition_context().candidate_prune_k == 100
        auto.router.close()
        auto.global_state.close()

    def test_malformed_spec_fails_at_build_time(self):
        with pytest.raises(ValueError, match="candidate_prune_k"):
            build_system(
                SystemConfig(
                    num_routers=240, num_nodes=100, candidate_prune_k="fast"
                )
            )

    def test_fig7_cell_replays_pr6_bytes(self):
        """One fig7 cell under the default config reproduces the exact
        floats measured at the PR 6 tip (commit f05a0d7) — the committed
        figures replay byte-identically with pruning merged but off."""
        tiny = ExperimentScale(
            name="tiny",
            num_routers=120,
            duration_s=240.0,
            adaptability_duration_s=540.0,
            sampling_period_s=60.0,
            optimal_max_explored=3000,
        )
        success, overhead = run_fig7(
            scale=tiny, node_counts=(80,), algorithms=("ACP",), seed=1
        )
        assert success.series["ACP"].points == ((80, 0.31085043988269795),)
        assert overhead.series["ACP"].points == ((80, 371.75),)
