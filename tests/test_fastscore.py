"""Scalar ↔ vectorised scorer equivalence (the fastscore contract).

``repro.core.fastscore`` promises that the vectorised probing path makes
*identical composition decisions* to the scalar reference — same success,
same selected components, same message counts — because every array
expression mirrors the scalar operation order.  These tests enforce the
contract end to end over real systems, including the configurations that
exercise its trickiest paths:

* guided ACP probing (risk/congestion ranking over the stale view),
* failed nodes (the per-request liveness mask),
* random-probing (RP) hop selection, whose rng draws must line up
  position-for-position between the two pool representations.

They also pin the memo-leak fix: per-request scoring state must not
outlive one ``compose()`` call.
"""

import random

import pytest

from repro.core import ACPComposer
from repro.core.baselines import RandomProbingComposer
from repro.experiments import EVALUATION_DEPLOYMENT
from repro.model.request import StreamRequest, derive_bandwidth_requirements
from repro.model.qos import DEFAULT_QOS_SCHEMA, QoSVector
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceVector
from repro.simulation import SystemConfig, build_system

CONFIG = SystemConfig(
    num_routers=240, num_nodes=100, deployment=EVALUATION_DEPLOYMENT, seed=7
)


def fresh_context():
    system = build_system(CONFIG)
    return system, system.composition_context(rng=random.Random(11))


def requests_for(system, count, qos=(420.0, 0.25), rate=90.0):
    """A deterministic mixed-template request stream."""
    out = []
    for i in range(count):
        graph = system.templates[i % len(system.templates)].graph
        out.append(
            StreamRequest(
                request_id=i,
                function_graph=graph,
                qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, list(qos)),
                node_requirements={
                    j: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [4.0, 25.0])
                    for j in range(len(graph))
                },
                bandwidth_requirements=derive_bandwidth_requirements(
                    graph, rate, 2.0
                ),
                stream_rate=rate,
            )
        )
    return out


def outcome_signature(request, outcome):
    """Everything a composition decision consists of."""
    if outcome.composition is None:
        assignment = None
    else:
        assignment = tuple(
            outcome.composition.component(i).component_id
            for i in range(len(request.function_graph))
        )
    return (
        outcome.success,
        assignment,
        outcome.probe_messages,
        outcome.setup_messages,
        outcome.explored,
        outcome.failure_reason,
    )


def assert_identical_decisions(composer_vec, composer_sca, context, requests):
    for request in requests:
        vec = composer_vec.compose(request)
        context.allocator.cancel_transient(request.request_id)
        sca = composer_sca.compose(request)
        context.allocator.cancel_transient(request.request_id)
        assert outcome_signature(request, vec) == outcome_signature(
            request, sca
        ), f"decision diverged on request {request.request_id}"


def test_acp_decisions_identical():
    system, context = fresh_context()
    vec = ACPComposer(context, probing_ratio=0.3, vectorized=True)
    sca = ACPComposer(context, probing_ratio=0.3, vectorized=False)
    assert_identical_decisions(vec, sca, context, requests_for(system, 40))


def test_acp_decisions_identical_tight_qos():
    """Near-infeasible bounds exercise the qualification edges."""
    system, context = fresh_context()
    vec = ACPComposer(context, probing_ratio=0.5, vectorized=True)
    sca = ACPComposer(context, probing_ratio=0.5, vectorized=False)
    requests = requests_for(system, 25, qos=(180.0, 0.08), rate=120.0)
    assert_identical_decisions(vec, sca, context, requests)


def test_acp_decisions_identical_with_down_nodes():
    """The vectorised liveness mask must match per-candidate alive checks."""
    system, context = fresh_context()
    vec = ACPComposer(context, probing_ratio=0.3, vectorized=True)
    sca = ACPComposer(context, probing_ratio=0.3, vectorized=False)
    requests = requests_for(system, 30)

    down = [system.network.node(node_id) for node_id in (3, 17, 42, 80)]
    for node in down:
        node.fail()
    try:
        assert_identical_decisions(vec, sca, context, requests[:15])
        # partial recovery mid-stream: the mask must track transitions
        down[0].recover()
        down[1].recover()
        assert_identical_decisions(vec, sca, context, requests[15:])
    finally:
        for node in down:
            if not node.alive:
                node.recover()


def test_random_probing_decisions_identical():
    """RP consumes rng draws; pool order and draw positions must line up.

    The two composers each get their own identically-seeded system and
    rng, so the random hop selections are comparable draw for draw.
    """
    system_a, context_a = fresh_context()
    system_b, context_b = fresh_context()
    vec = RandomProbingComposer(context_a, probing_ratio=0.4, vectorized=True)
    sca = RandomProbingComposer(context_b, probing_ratio=0.4, vectorized=False)
    for req_a, req_b in zip(
        requests_for(system_a, 30), requests_for(system_b, 30)
    ):
        out_a = vec.compose(req_a)
        context_a.allocator.cancel_transient(req_a.request_id)
        out_b = sca.compose(req_b)
        context_b.allocator.cancel_transient(req_b.request_id)
        assert outcome_signature(req_a, out_a) == outcome_signature(
            req_b, out_b
        ), f"RP decision diverged on request {req_a.request_id}"


def test_compose_leaves_no_per_request_state():
    """Per-request scoring memos are compose()-local; nothing may leak
    onto the composer between requests (the bug this PR removed)."""
    system, context = fresh_context()
    composer = ACPComposer(context, probing_ratio=0.3, vectorized=False)
    requests = requests_for(system, 3)

    composer.compose(requests[0])
    context.allocator.cancel_transient(requests[0].request_id)
    attrs_after_first = set(vars(composer))
    for request in requests[1:]:
        composer.compose(request)
        context.allocator.cancel_transient(request.request_id)
        assert set(vars(composer)) == attrs_after_first
    assert not hasattr(composer, "_stale_qos_memo")
    assert not hasattr(composer, "_stale_bw_memo")


def test_fast_scorer_is_shared_and_epoch_keyed():
    """One FastScorer per context, reused across composers and requests;
    its caches key on substrate epochs, not on requests."""
    system, context = fresh_context()
    first = ACPComposer(context, probing_ratio=0.3)
    second = ACPComposer(context, probing_ratio=0.6)
    assert context.fast_scorer() is context.fast_scorer()

    request = requests_for(system, 1)[0]
    first.compose(request)
    context.allocator.cancel_transient(request.request_id)
    scorer = context.fast_scorer()
    tables_before = dict(scorer._tables)
    second.compose(request)
    context.allocator.cancel_transient(request.request_id)
    # same registry version → the candidate tables were reused, not rebuilt
    for function_id, table in scorer._tables.items():
        assert tables_before.get(function_id) is table
