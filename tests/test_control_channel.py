"""Tests for the control-plane channel seam and slack-bounded retries.

The ``ControlChannel`` on the composition context is the only legal
probe-delivery path (DEVELOPMENT.md).  These tests pin its two key
contracts: a zero-loss channel reproduces the perfect channel's outcomes
exactly, and the prober's retry budget is bounded by the request's
remaining QoS delay slack.
"""

import random

import pytest

from repro.core import ACPComposer
from repro.core.control import (
    LossyControlChannel,
    PerfectControlChannel,
    delay_slack_ms,
)
from tests.conftest import build_small_system, make_request, qv


class TestDelaySlack:
    def test_slack_is_remaining_delay_budget(self):
        assert delay_slack_ms(qv(120.0), qv(200.0)) == pytest.approx(80.0)

    def test_overspent_budget_gives_negative_slack(self):
        assert delay_slack_ms(qv(250.0), qv(200.0)) == pytest.approx(-50.0)


class TestChannels:
    def test_perfect_channel_always_delivers(self):
        channel = PerfectControlChannel()
        assert channel.lossless
        delivered, delay_ms = channel.send()
        assert delivered
        assert delay_ms == 0.0
        assert channel.messages_sent == 1
        assert channel.messages_lost == 0

    def test_lossy_channel_validation(self):
        with pytest.raises(ValueError, match="loss_probability"):
            LossyControlChannel(1.0)
        with pytest.raises(ValueError, match="delay_ms"):
            LossyControlChannel(0.1, delay_ms=-1.0)
        with pytest.raises(ValueError, match="max_retries"):
            LossyControlChannel(0.1, max_retries=-1)

    def test_lossy_channel_counts_losses(self):
        channel = LossyControlChannel(0.5, rng=random.Random(3))
        delivered = [channel.send()[0] for _ in range(200)]
        assert channel.messages_sent == 200
        assert channel.messages_lost == delivered.count(False)
        assert 0 < channel.messages_lost < 200

    def test_zero_loss_channel_consumes_no_randomness(self):
        rng = random.Random(5)
        reference = random.Random(5).random()
        channel = LossyControlChannel(0.0, rng=rng)
        for _ in range(10):
            assert channel.send() == (True, 0.0)
        assert rng.random() == reference
        assert channel.messages_lost == 0


def _compose_once(channel=None, probing_ratio=1.0):
    """One seeded composition on a fresh small system."""
    system = build_small_system(seed=9)
    context = system.composition_context(rng=random.Random(3))
    if channel is not None:
        context.control = channel
    composer = ACPComposer(context, probing_ratio=probing_ratio)
    template = system.templates.sample(random.Random(4))
    request = make_request(template.graph, delay_budget=500.0, loss_budget=0.4)
    return composer.compose(request), context


class TestProbeDelivery:
    def test_zero_loss_channel_reproduces_perfect_outcomes(self):
        """The differential guard: a LossyControlChannel with p=0 and no
        delay must be decision-identical to the perfect default — the
        retry machinery may not perturb a healthy control plane."""
        perfect_outcome, perfect_context = _compose_once()
        lossy_outcome, lossy_context = _compose_once(
            LossyControlChannel(0.0, rng=random.Random(11))
        )
        assert repr(perfect_outcome) == repr(lossy_outcome)
        assert (
            perfect_context.control.messages_sent
            == lossy_context.control.messages_sent
        )

    def test_delay_eating_the_slack_drops_probes(self):
        """A per-attempt control delay larger than the whole QoS delay
        budget must drop every probe — delivered-but-late is lost."""
        outcome, context = _compose_once(
            LossyControlChannel(0.0, delay_ms=1e6, rng=random.Random(1))
        )
        assert not outcome.success
        assert outcome.failure_reason == "probes_dropped"
        assert context.control.messages_sent > 0

    def test_retries_recover_from_loss(self):
        """With a generous retry budget and slack, a moderately lossy
        channel still composes — at a higher message cost."""
        outcome, context = _compose_once(
            LossyControlChannel(0.3, rng=random.Random(2), max_retries=5)
        )
        reference, _ = _compose_once()
        assert outcome.success
        assert context.control.messages_lost > 0
        # retries cost real messages: more sent than the perfect run
        assert outcome.probe_messages > reference.probe_messages

    def test_no_retries_under_total_loss_fails_cleanly(self):
        outcome, context = _compose_once(
            LossyControlChannel(0.99, rng=random.Random(6), max_retries=0)
        )
        assert not outcome.success
        assert outcome.failure_reason == "probes_dropped"
        assert context.control.messages_lost == context.control.messages_sent
