"""Unit tests for the load-dependent component QoS model."""

import pytest

from repro.model.qos_model import LoadDependentQoSModel
from tests.conftest import make_component, rv


@pytest.fixture
def model():
    return LoadDependentQoSModel(delay_load_factor=1.0, loss_load_factor=1.0)


class TestUtilization:
    def test_idle_is_zero(self, model):
        assert model.utilization(rv(100, 1000), rv(100, 1000)) == 0.0

    def test_full_is_one(self, model):
        assert model.utilization(rv(0, 0), rv(100, 1000)) == 1.0

    def test_worst_dimension_dominates(self, model):
        # cpu 50% used, memory 90% used -> utilization 0.9
        assert model.utilization(rv(50, 100), rv(100, 1000)) == pytest.approx(0.9)

    def test_clamped_to_unit_interval(self, model):
        # negative availability (transient overshoot) clamps at 1
        assert model.utilization(rv(-5, 0), rv(100, 1000)) == 1.0


class TestEffectiveQoS:
    def test_idle_host_keeps_base_qos(self, model, catalog):
        component = make_component(0, catalog[0], 0, delay=20.0, loss=0.004)
        qos = model.effective_qos(component, rv(100, 1000), rv(100, 1000))
        assert qos["delay"] == pytest.approx(20.0)
        assert qos["loss_rate"] == pytest.approx(0.004)

    def test_full_host_doubles_with_unit_factors(self, model, catalog):
        component = make_component(0, catalog[0], 0, delay=20.0, loss=0.004)
        qos = model.effective_qos(component, rv(0, 0), rv(100, 1000))
        assert qos["delay"] == pytest.approx(40.0)
        assert qos["loss_rate"] == pytest.approx(0.008)

    def test_zero_factors_recover_static_model(self, catalog):
        static = LoadDependentQoSModel(delay_load_factor=0.0, loss_load_factor=0.0)
        component = make_component(0, catalog[0], 0, delay=20.0, loss=0.004)
        qos = static.effective_qos(component, rv(0, 0), rv(100, 1000))
        assert qos == component.qos

    def test_loss_clamped_below_one(self, catalog):
        model = LoadDependentQoSModel(loss_load_factor=1e9)
        component = make_component(0, catalog[0], 0, loss=0.01)
        qos = model.effective_qos(component, rv(0, 0), rv(100, 1000))
        assert qos["loss_rate"] < 1.0

    def test_monotone_in_load(self, model, catalog):
        component = make_component(0, catalog[0], 0, delay=20.0)
        lighter = model.effective_qos(component, rv(80, 800), rv(100, 1000))
        heavier = model.effective_qos(component, rv(20, 200), rv(100, 1000))
        assert heavier["delay"] > lighter["delay"]
        assert heavier["loss_rate"] >= lighter["loss_rate"]

    def test_negative_factors_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LoadDependentQoSModel(delay_load_factor=-1.0)


class TestContextViews:
    def test_precise_vs_stale_divergence(self, micro_context):
        """Loading a node below the update threshold: the precise view sees
        slower components, the stale view still reports base QoS."""
        component = micro_context.registry.component(2)  # on v2 (100 cpu)
        micro_context.network.node(2).allocate(rv(8, 80))  # under threshold
        precise = micro_context.precise_component_qos(component)
        stale = micro_context.stale_component_qos(component)
        assert precise["delay"] > component.qos["delay"]
        assert stale["delay"] == pytest.approx(component.qos["delay"])

    def test_views_agree_after_reported_update(self, micro_context):
        component = micro_context.registry.component(2)
        micro_context.network.node(2).allocate(rv(30, 300))  # over threshold
        precise = micro_context.precise_component_qos(component)
        stale = micro_context.stale_component_qos(component)
        assert stale["delay"] == pytest.approx(precise["delay"])
