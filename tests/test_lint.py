"""Self-tests for ``repro.analysis`` (repro-lint).

Each rule code has a deliberately-broken fixture under
``tests/fixtures/lint`` plus a clean counterpart; the tests pin exact
rule codes and line numbers so rule regressions (missed violations *and*
new false positives) both fail loudly.  The suite ends with the
self-hosting check: the real ``src/repro`` tree must lint clean.
"""

import io
import json
import os
import subprocess
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout
from unittest import mock

from repro.analysis import lint_paths
from repro.analysis.cli import main as cli_main
from repro.analysis.docs import seed_table_block
from repro.analysis.engine import module_name
from repro.analysis.rules import ALL_RULES
from repro.analysis.seeds import (
    REGISTRY,
    SeedSlot,
    absolute_derivation,
    slots_by_name,
    validate_registry,
)
from repro.analysis.violations import parse_suppressions

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, "repro", *parts)


def lint_fixture(*parts: str):
    """Lint one fixture file with the fixture tree as the module root."""
    result = lint_paths([fixture(*parts)], src_root=FIXTURES)
    return [(v.code, v.line) for v in result.violations]


def _slot(**overrides) -> SeedSlot:
    base = dict(
        name="fx",
        base="workload_seed",
        symbol="seed",
        multiplier=1,
        offset=0,
        module="repro.simulation.fx",
        consumer="repro.simulation",
        subsystem="fixture",
        description="fixture slot",
    )
    base.update(overrides)
    return SeedSlot(**base)


#: slots the provenance fixtures declare (passed via ``seed_registry`` so
#: the production registry stays fixture-free)
FIXTURE_SLOTS = (
    _slot(name="fx-churn", offset=99, module="repro.simulation.det150_clean"),
    _slot(
        name="fx-collide-a",
        offset=31,
        module="repro.simulation.det151_collision",
    ),
    _slot(
        name="fx-collide-b",
        offset=31,
        module="repro.topology.det152_sink",
        consumer="repro.topology",
    ),
    _slot(name="fx-escape", offset=13, module="repro.simulation.det152_escape"),
    _slot(
        name="fx-sanctioned",
        offset=14,
        module="repro.simulation.det152_clean",
        consumer="repro.topology",
    ),
    _slot(name="fx-burst", offset=21, module="repro.simulation.det153_clean"),
)


def lint_fixtures(names, registry=None):
    """Lint several fixture files together (whole-program rules need the
    full context); ``names`` are slash-separated fixture-relative paths."""
    paths = [fixture(*name.split("/")) for name in names]
    result = lint_paths(paths, src_root=FIXTURES, seed_registry=registry)
    return [(v.code, v.line) for v in result.violations]


class DeterminismRuleTest(unittest.TestCase):
    def test_det101_catches_every_global_rng_shape(self):
        found = lint_fixture("topology", "det101_global_random.py")
        self.assertEqual(
            found,
            [
                ("DET101", 4),   # from random import choice, shuffle
                ("DET101", 8),   # random.Random()
                ("DET101", 9),   # Random()
                ("DET101", 14),  # random.random()
                ("DET101", 15),  # random.randint()
                ("DET101", 20),  # the module object as an RNG value
                ("DET101", 25),  # np.random.shuffle
                ("DET101", 26),  # np.random.default_rng()
            ],
        )

    def test_det101_clean_counterpart(self):
        self.assertEqual(lint_fixture("topology", "det101_clean.py"), [])

    def test_det102_catches_wallclock_reads(self):
        found = lint_fixture("topology", "det102_wallclock.py")
        self.assertEqual(
            found,
            [
                ("DET102", 4),   # from time import perf_counter
                ("DET102", 9),   # time.time()
                ("DET102", 10),  # time.monotonic()
                ("DET102", 11),  # perf_counter()
                ("DET102", 12),  # datetime.now()
            ],
        )

    def test_det102_allows_the_observability_timer_module(self):
        self.assertEqual(lint_fixture("observability", "recorder.py"), [])

    def test_det103_catches_unordered_iteration(self):
        found = lint_fixture("topology", "det103_set_iter.py")
        self.assertEqual(
            found,
            [
                ("DET103", 7),   # for over a set literal
                ("DET103", 13),  # list(set-typed local)
                ("DET103", 17),  # for over dict.keys()
                ("DET103", 22),  # rng.sample(annotated set param)
                ("DET103", 27),  # comprehension over a set union
            ],
        )

    def test_det103_clean_counterpart(self):
        self.assertEqual(lint_fixture("topology", "det103_clean.py"), [])


class LayeringRuleTest(unittest.TestCase):
    def test_lay201_upward_import(self):
        found = lint_fixture("simulation", "lay201_upward.py")
        self.assertEqual(found, [("LAY201", 3)])

    def test_lay202_cycle_reports_the_chain(self):
        result = lint_paths(
            [fixture("alpha"), fixture("beta")], src_root=FIXTURES
        )
        codes = sorted((v.code, v.line) for v in result.violations)
        # one cycle, plus each file flagging both undeclared packages
        self.assertEqual(
            codes, [("LAY202", 3)] + [("LAY203", 3)] * 4
        )
        cycle = [v for v in result.violations if v.code == "LAY202"][0]
        self.assertIn("alpha", cycle.message)
        self.assertIn("beta", cycle.message)
        self.assertIn("->", cycle.message)

    def test_lay203_undeclared_package(self):
        found = lint_fixture("mystery", "outsider.py")
        self.assertEqual(found, [("LAY203", 3)])

    def test_layering_needs_a_src_root(self):
        # without module names there is no layer information to check
        result = lint_paths(
            [fixture("simulation", "lay201_upward.py")], src_root=None
        )
        self.assertEqual(result.violations, [])


class RecorderDisciplineRuleTest(unittest.TestCase):
    def test_rec301_catches_unguarded_calls_on_hot_paths(self):
        found = lint_fixture("core", "hot_unguarded.py")
        self.assertEqual(
            found,
            [
                ("REC301", 5),
                ("REC301", 7),
                ("REC301", 8),
                ("REC301", 17),
            ],
        )

    def test_rec301_accepts_every_guard_shape(self):
        self.assertEqual(lint_fixture("core", "hot_guarded.py"), [])

    def test_rec301_ignores_cold_paths(self):
        self.assertEqual(lint_fixture("simulation", "cold_path.py"), [])


class RngFlowRuleTest(unittest.TestCase):
    def test_det150_undeclared_derivations(self):
        found = lint_fixtures(
            ["simulation/det150_undeclared.py"], FIXTURE_SLOTS
        )
        self.assertEqual(
            found,
            [
                ("DET150", 7),   # Random(seed + 99), no slot
                ("DET150", 8),   # Random(seed * 5 + 2), no slot
                ("DET150", 13),  # seed=workload_seed + 7 keyword site
            ],
        )

    def test_det150_declared_and_passthrough_are_clean(self):
        self.assertEqual(
            lint_fixtures(["simulation/det150_clean.py"], FIXTURE_SLOTS), []
        )

    def test_det151_colliding_slots(self):
        found = lint_fixtures(
            ["simulation/det151_collision.py"], FIXTURE_SLOTS
        )
        self.assertEqual(found, [("DET151", 11)])

    def test_det152_stream_escaping_its_consumer(self):
        found = lint_fixtures(
            ["simulation/det152_escape.py", "topology/det152_sink.py"],
            FIXTURE_SLOTS,
        )
        self.assertEqual(found, [("DET152", 15)])

    def test_det152_flow_into_declared_consumer_is_clean(self):
        self.assertEqual(
            lint_fixtures(
                ["simulation/det152_clean.py", "topology/det152_sink.py"],
                FIXTURE_SLOTS,
            ),
            [],
        )

    def test_det153_config_dependent_interleaving(self):
        found = lint_fixtures(
            ["simulation/det153_interleave.py"], FIXTURE_SLOTS
        )
        self.assertEqual(found, [("DET153", 10)])

    def test_det153_branch_with_its_own_stream_is_clean(self):
        self.assertEqual(
            lint_fixtures(["simulation/det153_clean.py"], FIXTURE_SLOTS), []
        )


class ShardSafetyRuleTest(unittest.TestCase):
    def test_shr401_module_level_mutable_containers(self):
        found = lint_fixture("state", "shr401_module_state.py")
        self.assertEqual(
            found,
            [
                ("SHR401", 6),  # dict literal
                ("SHR401", 7),  # annotated list literal
                ("SHR401", 8),  # dict(...) constructor
                ("SHR401", 9),  # defaultdict(...); __all__ exempt below
            ],
        )

    def test_shr401_frozen_state_is_clean(self):
        self.assertEqual(lint_fixture("state", "shr401_clean.py"), [])

    def test_shr402_bare_dict_caches(self):
        found = lint_fixture("core", "shr402_cache.py")
        # _bounds is a bare dict too, but not named *cache*/*memo*
        self.assertEqual(found, [("SHR402", 8), ("SHR402", 9)])

    def test_shr402_lru_caches_are_clean(self):
        self.assertEqual(lint_fixture("core", "shr402_clean.py"), [])

    def test_shr403_listener_without_teardown(self):
        found = lint_fixture("topology", "shr403_listener.py")
        self.assertEqual(found, [("SHR403", 7)])

    def test_shr403_close_teardown_is_clean(self):
        self.assertEqual(lint_fixture("topology", "shr403_clean.py"), [])

    def test_shr404_cross_subsystem_writes(self):
        found = lint_fixtures(
            ["simulation/shr404_mutation.py", "core/shr404_owner.py"]
        )
        self.assertEqual(
            found,
            [
                ("SHR404", 11),  # plain attribute write
                ("SHR404", 12),  # augmented assignment
                ("SHR404", 17),  # method parameter
            ],
        )

    def test_shr404_reading_foreign_state_is_clean(self):
        self.assertEqual(
            lint_fixtures(
                ["simulation/shr404_clean.py", "core/shr404_owner.py"]
            ),
            [],
        )


class HotPathRuleTest(unittest.TestCase):
    def test_hot5xx_budget_violations(self):
        found = lint_fixture("core", "hot5xx_budget.py")
        self.assertEqual(
            found,
            [
                ("HOT501", 16),  # sorted(self._table.items())
                ("HOT502", 17),  # np.zeros((len(pool), len(pool)))
                ("HOT503", 18),  # for over self._table.items()
                ("HOT504", 20),  # unguarded f-string
                ("HOT505", 21),  # print()
                ("HOT506", 29),  # budget="fast" is not O(...)
                ("HOT501", 34),  # list(network.nodes) in a resolved callee
            ],
        )

    def test_hot5xx_guarded_and_bounded_is_clean(self):
        self.assertEqual(lint_fixture("core", "hot5xx_clean.py"), [])

    def test_hot506_budget_table_function_missing_marker(self):
        # the fixture tree reuses the real module/class names so the
        # REQUIRED_HOT_PATHS table matches
        found = lint_fixture("core", "prober.py")
        self.assertEqual(found, [("HOT506", 9)])


class SeedRegistryTest(unittest.TestCase):
    def test_registry_is_structurally_sound(self):
        self.assertEqual(validate_registry(), [])

    def test_absolute_offsets_match_the_determinism_contract(self):
        by_name = slots_by_name()
        absolute = {
            slot.name: absolute_derivation(slot, by_name)
            for slot in REGISTRY
        }
        self.assertEqual(
            absolute["composition-rng"], ("workload_seed", 1, 17)
        )
        self.assertEqual(absolute["churn-injector"], ("workload_seed", 1, 31))
        self.assertEqual(
            absolute["control-plane-faults"], ("workload_seed", 1, 41)
        )
        # chained: state-update-loss = control-plane-faults + 1
        self.assertEqual(
            absolute["state-update-loss"], ("workload_seed", 1, 42)
        )
        self.assertEqual(
            absolute["population-workload"], ("workload_seed", 1, 43)
        )
        self.assertEqual(
            absolute["population-arrivals"], ("workload_seed", 1, 44)
        )
        self.assertEqual(
            absolute["population-regions"], ("workload_seed", 1, 45)
        )
        self.assertEqual(absolute["workload-root"], ("system_seed", 1, 1000))
        self.assertEqual(
            absolute["component-templates"], ("system_seed", 7, 1)
        )
        self.assertEqual(absolute["overlay-build"], ("system_seed", 7, 3))

    def test_validate_registry_reports_collisions_and_bad_chains(self):
        colliding = REGISTRY + (
            _slot(name="fx-dup", offset=17, symbol="workload_seed"),
        )
        errors = validate_registry(colliding)
        self.assertTrue(any("composition-rng" in e for e in errors))
        dangling = REGISTRY + (_slot(name="fx-dangling", base="no-such"),)
        errors = validate_registry(dangling)
        self.assertTrue(any("bad base chain" in e for e in errors))

    def test_development_md_table_is_in_sync(self):
        """Doc-drift gate: ``make docs-seeds`` must be a no-op."""
        with open(
            os.path.join(REPO_ROOT, "DEVELOPMENT.md"), encoding="utf-8"
        ) as handle:
            self.assertIn(seed_table_block(), handle.read())


class SuppressionTest(unittest.TestCase):
    def test_fixture_suppressions(self):
        # trailing, standalone-above, and disable=all forms all hold; the
        # wrong-code suppression does not hide the real violation
        found = lint_fixture("topology", "suppressed.py")
        self.assertEqual(found, [("DET103", 24)])

    def test_parse_trailing_and_standalone(self):
        source = (
            "x = 1  # repro-lint: disable=DET101\n"
            "# repro-lint: disable=DET103,REC301 -- justification\n"
            "y = 2\n"
        )
        suppressions = parse_suppressions(source)
        self.assertEqual(suppressions[1], frozenset({"DET101"}))
        self.assertEqual(suppressions[3], frozenset({"DET103", "REC301"}))

    def test_marker_inside_string_is_ignored(self):
        source = 'text = "# repro-lint: disable=DET101"\n'
        self.assertEqual(parse_suppressions(source), {})

    def test_anchor_fixture_shields_both_hard_shapes(self):
        # a marker above a multi-line call anchors to the call's first
        # line; a marker above a decorated def anchors to the def line
        self.assertEqual(
            lint_fixture("topology", "suppressed_anchors.py"), []
        )

    def test_anchor_skips_stacked_comments_and_blanks(self):
        source = (
            "# repro-lint: disable=DET103 -- first of a stack\n"
            "# a second explanatory comment\n"
            "\n"
            "value = compute()\n"
        )
        self.assertEqual(parse_suppressions(source), {4: frozenset({"DET103"})})

    def test_anchor_travels_past_decorators_to_the_def(self):
        source = (
            "# repro-lint: disable=HOT506 -- decorated def below\n"
            "@hot_path(budget=\"sketchy\")\n"
            "@wraps(inner)\n"
            "def sketch():\n"
            "    return None\n"
        )
        self.assertEqual(parse_suppressions(source), {4: frozenset({"HOT506"})})

    def test_trailing_marker_on_a_multiline_statement_first_line(self):
        source = (
            "result = compute(  # repro-lint: disable=DET103 -- trailing\n"
            "    argument,\n"
            ")\n"
        )
        self.assertEqual(parse_suppressions(source), {1: frozenset({"DET103"})})


class ParseErrorTest(unittest.TestCase):
    def test_broken_file_reports_par001(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "broken.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("def broken(:\n")
            result = lint_paths([path])
            self.assertEqual(len(result.violations), 1)
            self.assertEqual(result.violations[0].code, "PAR001")


class EngineTest(unittest.TestCase):
    def test_module_name_resolution(self):
        self.assertEqual(
            module_name(fixture("core", "hot_guarded.py"), FIXTURES),
            "repro.core.hot_guarded",
        )
        self.assertEqual(
            module_name(fixture("core", "__init__.py"), FIXTURES),
            "repro.core",
        )
        self.assertIsNone(module_name("/elsewhere/thing.py", FIXTURES))
        self.assertIsNone(module_name(fixture("core", "hot_guarded.py"), None))

    def test_every_emitted_code_is_in_the_catalog(self):
        result = lint_paths([FIXTURES], src_root=FIXTURES)
        for violation in result.violations:
            self.assertIn(violation.code, ALL_RULES)

    def test_every_rule_has_a_violation_fixture(self):
        """Fixture discovery: linting the whole tree must exercise every
        catalog code, even for rules without a clean counterpart file
        (PAR001's broken file is a tempfile, see ParseErrorTest)."""
        result = lint_paths([FIXTURES], src_root=FIXTURES, seed_registry=FIXTURE_SLOTS)
        emitted = {v.code for v in result.violations}
        self.assertEqual(result.internal_errors, [])
        expected = set(ALL_RULES) - {"PAR001"}
        self.assertEqual(expected - emitted, set())

    def test_crashed_rule_pass_is_an_internal_error(self):
        with mock.patch(
            "repro.analysis.engine.check_determinism",
            side_effect=RuntimeError("rule exploded"),
        ):
            result = lint_paths(
                [fixture("core", "hot_guarded.py")], src_root=FIXTURES
            )
        self.assertFalse(result.ok)
        self.assertTrue(result.internal_errors)
        self.assertIn("determinism crashed", result.internal_errors[0])
        self.assertIn("rule exploded", result.internal_errors[0])

    def test_crashed_program_pass_still_reports_other_families(self):
        with mock.patch(
            "repro.analysis.engine.check_shard_safety",
            side_effect=RuntimeError("pass exploded"),
        ):
            result = lint_paths(
                [fixture("core", "hot5xx_budget.py")], src_root=FIXTURES
            )
        self.assertTrue(result.internal_errors)
        # the hot-path family still ran and found its violations
        self.assertIn("HOT501", {v.code for v in result.violations})


class OutputFormatTest(unittest.TestCase):
    def _result(self):
        return lint_paths(
            [fixture("core", "hot_unguarded.py")], src_root=FIXTURES
        )

    def test_text_format_is_path_line_col_code(self):
        line = self._result().formatted().splitlines()[0]
        self.assertRegex(line, r"hot_unguarded\.py:5:\d+: REC301 ")

    def test_json_format_round_trips(self):
        document = json.loads(self._result().formatted_json())
        self.assertFalse(document["clean"])
        self.assertEqual(document["files_checked"], 1)
        self.assertEqual(document["internal_errors"], [])
        codes = {entry["code"] for entry in document["violations"]}
        self.assertEqual(codes, {"REC301"})
        first = document["violations"][0]
        self.assertEqual(
            sorted(first), ["code", "col", "line", "message", "path"]
        )
        self.assertEqual(first["line"], 5)

    def test_json_format_clean_tree(self):
        result = lint_paths(
            [fixture("core", "hot_guarded.py")], src_root=FIXTURES
        )
        document = json.loads(result.formatted_json())
        self.assertTrue(document["clean"])
        self.assertEqual(document["violations"], [])

    def test_github_format_emits_workflow_commands(self):
        lines = self._result().formatted_github().splitlines()
        self.assertTrue(lines)
        for line in lines:
            self.assertRegex(
                line, r"^::error file=.*,line=\d+,col=\d+,title=REC301::"
            )


class CliTest(unittest.TestCase):
    def run_cli(self, *argv: str) -> "subprocess.CompletedProcess[str]":
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for code in ALL_RULES:
            self.assertIn(code, proc.stdout)

    def test_violations_exit_nonzero_with_locations(self):
        proc = self.run_cli(
            os.path.join(
                "tests", "fixtures", "lint", "repro", "core", "hot_unguarded.py"
            ),
            "--src-root",
            os.path.join("tests", "fixtures", "lint"),
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REC301", proc.stdout)
        self.assertIn("hot_unguarded.py:5:", proc.stdout)

    def test_default_invocation_is_clean(self):
        proc = self.run_cli()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    FIXTURE_ARGS = (
        os.path.join(
            "tests", "fixtures", "lint", "repro", "core", "hot_unguarded.py"
        ),
        "--src-root",
        os.path.join("tests", "fixtures", "lint"),
    )

    def test_format_json(self):
        proc = self.run_cli(*self.FIXTURE_ARGS, "--format", "json")
        self.assertEqual(proc.returncode, 1)
        document = json.loads(proc.stdout)
        self.assertFalse(document["clean"])
        self.assertEqual(
            {entry["code"] for entry in document["violations"]}, {"REC301"}
        )

    def test_format_github(self):
        proc = self.run_cli(*self.FIXTURE_ARGS, "--format", "github")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("::error file=", proc.stdout)
        self.assertIn("title=REC301::", proc.stdout)

    def test_format_text_is_the_default(self):
        proc = self.run_cli(*self.FIXTURE_ARGS)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("hot_unguarded.py:5:", proc.stdout)
        self.assertNotIn("::error", proc.stdout)
        self.assertNotIn("{", proc.stdout)

    def test_layers_round_trip(self):
        proc = self.run_cli("--layers")
        self.assertEqual(proc.returncode, 0)
        # every declared rank and both universal/tool rows print
        for package in ("model", "topology", "core", "simulation", "cli"):
            self.assertIn(package, proc.stdout)
        self.assertIn("observability", proc.stdout)
        self.assertIn("analysis", proc.stdout)

    def test_seed_table_round_trip(self):
        proc = self.run_cli("--seed-table")
        self.assertEqual(proc.returncode, 0)
        for slot in REGISTRY:
            self.assertIn(slot.name, proc.stdout)

    def test_crashed_rule_exits_two(self):
        # in-process so the broken rule can be injected with mock.patch
        stdout, stderr = io.StringIO(), io.StringIO()
        with mock.patch(
            "repro.analysis.engine.check_determinism",
            side_effect=RuntimeError("rule exploded"),
        ), redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(
                [fixture("core", "hot_guarded.py"), "--src-root", FIXTURES]
            )
        self.assertEqual(code, 2)
        self.assertIn("internal error", stderr.getvalue())

    def test_crashed_rule_exits_two_in_github_format(self):
        stdout, stderr = io.StringIO(), io.StringIO()
        with mock.patch(
            "repro.analysis.engine.check_determinism",
            side_effect=RuntimeError("rule exploded"),
        ), redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(
                [
                    fixture("core", "hot_guarded.py"),
                    "--src-root",
                    FIXTURES,
                    "--format",
                    "github",
                ]
            )
        self.assertEqual(code, 2)
        self.assertIn(
            "::error title=repro-lint internal error::", stdout.getvalue()
        )


class SelfHostingTest(unittest.TestCase):
    def test_src_tree_is_lint_clean(self):
        """The acceptance criterion: zero violations on the real tree."""
        result = lint_paths(
            [os.path.join(SRC_ROOT, "repro")], src_root=SRC_ROOT
        )
        self.assertEqual(
            [v.format() for v in result.violations],
            [],
            "src/repro must stay repro-lint clean",
        )
        self.assertGreater(result.files_checked, 50)


if __name__ == "__main__":
    unittest.main()
