"""Self-tests for ``repro.analysis`` (repro-lint).

Each rule code has a deliberately-broken fixture under
``tests/fixtures/lint`` plus a clean counterpart; the tests pin exact
rule codes and line numbers so rule regressions (missed violations *and*
new false positives) both fail loudly.  The suite ends with the
self-hosting check: the real ``src/repro`` tree must lint clean.
"""

import os
import subprocess
import sys
import unittest

from repro.analysis import lint_paths
from repro.analysis.engine import module_name
from repro.analysis.rules import ALL_RULES
from repro.analysis.violations import parse_suppressions

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, "repro", *parts)


def lint_fixture(*parts: str):
    """Lint one fixture file with the fixture tree as the module root."""
    result = lint_paths([fixture(*parts)], src_root=FIXTURES)
    return [(v.code, v.line) for v in result.violations]


class DeterminismRuleTest(unittest.TestCase):
    def test_det101_catches_every_global_rng_shape(self):
        found = lint_fixture("topology", "det101_global_random.py")
        self.assertEqual(
            found,
            [
                ("DET101", 4),   # from random import choice, shuffle
                ("DET101", 8),   # random.Random()
                ("DET101", 9),   # Random()
                ("DET101", 14),  # random.random()
                ("DET101", 15),  # random.randint()
                ("DET101", 20),  # the module object as an RNG value
                ("DET101", 25),  # np.random.shuffle
                ("DET101", 26),  # np.random.default_rng()
            ],
        )

    def test_det101_clean_counterpart(self):
        self.assertEqual(lint_fixture("topology", "det101_clean.py"), [])

    def test_det102_catches_wallclock_reads(self):
        found = lint_fixture("topology", "det102_wallclock.py")
        self.assertEqual(
            found,
            [
                ("DET102", 4),   # from time import perf_counter
                ("DET102", 9),   # time.time()
                ("DET102", 10),  # time.monotonic()
                ("DET102", 11),  # perf_counter()
                ("DET102", 12),  # datetime.now()
            ],
        )

    def test_det102_allows_the_observability_timer_module(self):
        self.assertEqual(lint_fixture("observability", "recorder.py"), [])

    def test_det103_catches_unordered_iteration(self):
        found = lint_fixture("topology", "det103_set_iter.py")
        self.assertEqual(
            found,
            [
                ("DET103", 7),   # for over a set literal
                ("DET103", 13),  # list(set-typed local)
                ("DET103", 17),  # for over dict.keys()
                ("DET103", 22),  # rng.sample(annotated set param)
                ("DET103", 27),  # comprehension over a set union
            ],
        )

    def test_det103_clean_counterpart(self):
        self.assertEqual(lint_fixture("topology", "det103_clean.py"), [])


class LayeringRuleTest(unittest.TestCase):
    def test_lay201_upward_import(self):
        found = lint_fixture("simulation", "lay201_upward.py")
        self.assertEqual(found, [("LAY201", 3)])

    def test_lay202_cycle_reports_the_chain(self):
        result = lint_paths(
            [fixture("alpha"), fixture("beta")], src_root=FIXTURES
        )
        codes = sorted((v.code, v.line) for v in result.violations)
        # one cycle, plus each file flagging both undeclared packages
        self.assertEqual(
            codes, [("LAY202", 3)] + [("LAY203", 3)] * 4
        )
        cycle = [v for v in result.violations if v.code == "LAY202"][0]
        self.assertIn("alpha", cycle.message)
        self.assertIn("beta", cycle.message)
        self.assertIn("->", cycle.message)

    def test_lay203_undeclared_package(self):
        found = lint_fixture("mystery", "outsider.py")
        self.assertEqual(found, [("LAY203", 3)])

    def test_layering_needs_a_src_root(self):
        # without module names there is no layer information to check
        result = lint_paths(
            [fixture("simulation", "lay201_upward.py")], src_root=None
        )
        self.assertEqual(result.violations, [])


class RecorderDisciplineRuleTest(unittest.TestCase):
    def test_rec301_catches_unguarded_calls_on_hot_paths(self):
        found = lint_fixture("core", "hot_unguarded.py")
        self.assertEqual(
            found,
            [
                ("REC301", 5),
                ("REC301", 7),
                ("REC301", 8),
                ("REC301", 17),
            ],
        )

    def test_rec301_accepts_every_guard_shape(self):
        self.assertEqual(lint_fixture("core", "hot_guarded.py"), [])

    def test_rec301_ignores_cold_paths(self):
        self.assertEqual(lint_fixture("simulation", "cold_path.py"), [])


class SuppressionTest(unittest.TestCase):
    def test_fixture_suppressions(self):
        # trailing, standalone-above, and disable=all forms all hold; the
        # wrong-code suppression does not hide the real violation
        found = lint_fixture("topology", "suppressed.py")
        self.assertEqual(found, [("DET103", 24)])

    def test_parse_trailing_and_standalone(self):
        source = (
            "x = 1  # repro-lint: disable=DET101\n"
            "# repro-lint: disable=DET103,REC301 -- justification\n"
            "y = 2\n"
        )
        suppressions = parse_suppressions(source)
        self.assertEqual(suppressions[1], frozenset({"DET101"}))
        self.assertEqual(suppressions[3], frozenset({"DET103", "REC301"}))

    def test_marker_inside_string_is_ignored(self):
        source = 'text = "# repro-lint: disable=DET101"\n'
        self.assertEqual(parse_suppressions(source), {})


class ParseErrorTest(unittest.TestCase):
    def test_broken_file_reports_par001(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "broken.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("def broken(:\n")
            result = lint_paths([path])
            self.assertEqual(len(result.violations), 1)
            self.assertEqual(result.violations[0].code, "PAR001")


class EngineTest(unittest.TestCase):
    def test_module_name_resolution(self):
        self.assertEqual(
            module_name(fixture("core", "hot_guarded.py"), FIXTURES),
            "repro.core.hot_guarded",
        )
        self.assertEqual(
            module_name(fixture("core", "__init__.py"), FIXTURES),
            "repro.core",
        )
        self.assertIsNone(module_name("/elsewhere/thing.py", FIXTURES))
        self.assertIsNone(module_name(fixture("core", "hot_guarded.py"), None))

    def test_every_emitted_code_is_in_the_catalog(self):
        result = lint_paths([FIXTURES], src_root=FIXTURES)
        for violation in result.violations:
            self.assertIn(violation.code, ALL_RULES)


class CliTest(unittest.TestCase):
    def run_cli(self, *argv: str) -> "subprocess.CompletedProcess[str]":
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for code in ALL_RULES:
            self.assertIn(code, proc.stdout)

    def test_violations_exit_nonzero_with_locations(self):
        proc = self.run_cli(
            os.path.join(
                "tests", "fixtures", "lint", "repro", "core", "hot_unguarded.py"
            ),
            "--src-root",
            os.path.join("tests", "fixtures", "lint"),
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REC301", proc.stdout)
        self.assertIn("hot_unguarded.py:5:", proc.stdout)

    def test_default_invocation_is_clean(self):
        proc = self.run_cli()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)


class SelfHostingTest(unittest.TestCase):
    def test_src_tree_is_lint_clean(self):
        """The acceptance criterion: zero violations on the real tree."""
        result = lint_paths(
            [os.path.join(SRC_ROOT, "repro")], src_root=SRC_ROOT
        )
        self.assertEqual(
            [v.format() for v in result.violations],
            [],
            "src/repro must stay repro-lint clean",
        )
        self.assertGreater(result.files_checked, 50)


if __name__ == "__main__":
    unittest.main()
