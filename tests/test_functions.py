"""Unit tests for the stream function catalog."""

import pytest

from repro.model.functions import DEFAULT_CATEGORIES, FunctionCatalog, StreamFunction


class TestStreamFunction:
    def test_output_rate_scales_by_selectivity(self, catalog):
        filtering = catalog.by_name("filtering-00")
        assert filtering.selectivity == 0.6
        assert filtering.output_rate(100.0) == pytest.approx(60.0)

    def test_nonpositive_selectivity_rejected(self, catalog):
        function = catalog[0]
        with pytest.raises(ValueError, match="selectivity"):
            StreamFunction(
                function_id=99,
                name="bad",
                category="x",
                input_formats=function.input_formats,
                output_formats=function.output_formats,
                selectivity=0.0,
            )

    def test_empty_formats_rejected(self):
        with pytest.raises(ValueError, match="formats"):
            StreamFunction(
                function_id=99,
                name="bad",
                category="x",
                input_formats=frozenset(),
                output_formats=frozenset(["fmt0"]),
            )


class TestFunctionCatalog:
    def test_default_size_is_80(self):
        assert len(FunctionCatalog()) == 80

    def test_dense_ids(self, catalog):
        for index, function in enumerate(catalog):
            assert function.function_id == index

    def test_categories_cycle(self):
        catalog = FunctionCatalog(size=16)
        names = [f.category for f in catalog]
        expected = [DEFAULT_CATEGORIES[i % 8][0] for i in range(16)]
        assert names == expected

    def test_shared_format_universe(self, catalog):
        assert catalog.formats == frozenset({"fmt0", "fmt1"})
        for function in catalog:
            assert function.input_formats == catalog.formats
            assert function.output_formats == catalog.formats

    def test_lookup_by_name(self, catalog):
        function = catalog.by_name("aggregation-00")
        assert function.category == "aggregation"

    def test_unknown_name(self, catalog):
        with pytest.raises(KeyError, match="unknown function"):
            catalog.by_name("nonexistent-99")

    def test_deterministic_generation(self):
        a = FunctionCatalog(size=20, num_formats=2)
        b = FunctionCatalog(size=20, num_formats=2)
        assert [f.name for f in a] == [f.name for f in b]
        assert [f.selectivity for f in a] == [f.selectivity for f in b]

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="positive"):
            FunctionCatalog(size=0)

    def test_invalid_formats(self):
        with pytest.raises(ValueError, match="num_formats"):
            FunctionCatalog(size=4, num_formats=0)

    def test_functions_tuple_matches_iteration(self, catalog):
        assert catalog.functions == tuple(iter(catalog))
