"""Unit tests for the overlay mesh and overlay links."""

import math
import random

import numpy as np
import pytest

from repro.topology import overlay
from repro.topology.ip_network import IPNetwork
from repro.topology.overlay import (
    InsufficientBandwidthError,
    OverlayLink,
    OverlayNetwork,
    build_overlay_network,
    k_smallest_stable,
)
from repro.topology.powerlaw import PowerLawTopologyGenerator
from repro.model.node import Node
from tests.conftest import rv


@pytest.fixture
def link():
    return OverlayLink(0, 2, 1, delay_ms=5.0, loss_rate=0.001, capacity_kbps=1000.0)


class TestOverlayLink:
    def test_endpoints_normalised(self, link):
        assert link.endpoints == (1, 2)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            OverlayLink(0, 1, 1, 1.0, 0.0, 100.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            OverlayLink(0, 0, 1, 1.0, 0.0, 0.0)

    def test_qos_vector(self, link):
        assert link.qos["delay"] == 5.0
        assert link.qos["loss_rate"] == 0.001

    def test_allocate_release_cycle(self, link):
        link.allocate_bandwidth(400.0)
        assert link.available_kbps == 600.0
        link.release_bandwidth(400.0)
        assert link.available_kbps == 1000.0

    def test_overallocation_rejected(self, link):
        with pytest.raises(InsufficientBandwidthError):
            link.allocate_bandwidth(1000.1)

    def test_negative_amounts_rejected(self, link):
        with pytest.raises(ValueError, match="negative"):
            link.allocate_bandwidth(-1.0)
        with pytest.raises(ValueError, match="negative"):
            link.release_bandwidth(-1.0)

    def test_release_more_than_allocated_rejected(self, link):
        link.allocate_bandwidth(10.0)
        with pytest.raises(ValueError, match="exceeds"):
            link.release_bandwidth(20.0)

    def test_other_end(self, link):
        assert link.other_end(1) == 2
        assert link.other_end(2) == 1
        with pytest.raises(ValueError, match="not an endpoint"):
            link.other_end(5)

    def test_listener_fires(self, link):
        events = []
        link.add_change_listener(lambda l: events.append(l.available_kbps))
        link.allocate_bandwidth(100.0)
        link.release_bandwidth(50.0)
        assert events == [900.0, 950.0]


class TestOverlayNetwork:
    def test_micro_adjacency(self, micro_network):
        assert set(micro_network.neighbors(0)) == {1, 2}
        assert len(micro_network.adjacent_links(1)) == 2

    def test_link_between(self, micro_network):
        assert micro_network.link_between(0, 1).link_id == 0
        assert micro_network.link_between(1, 0).link_id == 0

    def test_path_available_bw_bottleneck(self, micro_network):
        micro_network.link(0).allocate_bandwidth(9_500.0)
        assert micro_network.path_available_bw([0, 1]) == pytest.approx(500.0)
        micro_network.link(0).release_bandwidth(9_500.0)

    def test_empty_path_infinite_bw(self, micro_network):
        assert micro_network.path_available_bw([]) == float("inf")

    def test_non_dense_node_ids_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            OverlayNetwork([Node(1, 0, rv(1, 1))], [])

    def test_duplicate_links_rejected(self):
        nodes = [Node(0, 0, rv(1, 1)), Node(1, 1, rv(1, 1))]
        links = [
            OverlayLink(0, 0, 1, 1.0, 0.0, 100.0),
            OverlayLink(1, 1, 0, 1.0, 0.0, 100.0),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            OverlayNetwork(nodes, links)


class TestBuildOverlayNetwork:
    @pytest.fixture(scope="class")
    def ip(self):
        return IPNetwork(PowerLawTopologyGenerator(num_routers=120, seed=2).generate())

    def test_requested_size(self, ip):
        network = build_overlay_network(ip, 20, rng=random.Random(1))
        assert len(network) == 20

    def test_minimum_neighbor_degree(self, ip):
        network = build_overlay_network(
            ip, 20, neighbors_per_node=4, rng=random.Random(1)
        )
        # every node picked 4 nearest peers; union can only add degree
        assert all(len(network.neighbors(n.node_id)) >= 4 for n in network.nodes)

    def test_distinct_routers(self, ip):
        network = build_overlay_network(ip, 30, rng=random.Random(3))
        routers = [node.router_id for node in network.nodes]
        assert len(set(routers)) == len(routers)

    def test_link_delay_matches_ip_distance(self, ip):
        network = build_overlay_network(ip, 10, rng=random.Random(4))
        link = network.links[0]
        expected = ip.delay(
            network.node(link.node_a).router_id,
            network.node(link.node_b).router_id,
        )
        assert link.delay_ms == pytest.approx(expected)

    def test_too_many_nodes_rejected(self, ip):
        with pytest.raises(ValueError, match="cannot place"):
            build_overlay_network(ip, 500, rng=random.Random(0))

    @pytest.mark.parametrize("seed", range(8))
    def test_mesh_always_connected(self, ip, seed):
        """k-nearest unions can isolate clusters; the builder must bridge
        them — an unreachable node pair would make compositions
        structurally impossible."""
        from repro.topology.routing import OverlayRouter

        network = build_overlay_network(
            ip, 25, neighbors_per_node=2, rng=random.Random(seed)
        )
        router = OverlayRouter(network)
        assert all(router.reachable(0, n) for n in range(len(network)))

    def test_deterministic_given_rng(self, ip):
        a = build_overlay_network(ip, 15, rng=random.Random(9))
        b = build_overlay_network(ip, 15, rng=random.Random(9))
        assert [l.endpoints for l in a.links] == [l.endpoints for l in b.links]
        assert [n.capacity for n in a.nodes] == [n.capacity for n in b.nodes]

    @pytest.mark.parametrize("batch_size", [1, 7, 512])
    def test_dijkstra_batch_size_is_build_invariant(self, ip, batch_size):
        """The chunked, deduped build must produce a byte-identical
        network for ANY batch size — batching is a cost knob, never a
        semantic one.  Compares endpoints, delay, loss, capacity per link
        and router/capacity per node against the default build."""
        reference = build_overlay_network(ip, 30, rng=random.Random(6))
        network = build_overlay_network(
            ip, 30, rng=random.Random(6), dijkstra_batch_size=batch_size
        )
        assert [
            (l.endpoints, l.delay_ms, l.loss_rate, l.capacity_kbps)
            for l in network.links
        ] == [
            (l.endpoints, l.delay_ms, l.loss_rate, l.capacity_kbps)
            for l in reference.links
        ]
        assert [(n.router_id, n.capacity) for n in network.nodes] == [
            (n.router_id, n.capacity) for n in reference.nodes
        ]

    def test_link_delays_match_pairwise_solver(self, ip):
        """Every link's delay equals the independently-computed pairwise
        router distance — the deduped/batched path reads the same floats
        the naive per-pair solver would."""
        network = build_overlay_network(ip, 20, rng=random.Random(8))
        for link in network.links:
            expected = ip.delay(
                network.node(link.node_a).router_id,
                network.node(link.node_b).router_id,
            )
            assert link.delay_ms == expected

    def test_batch_size_validated(self, ip):
        with pytest.raises(ValueError, match="dijkstra_batch_size"):
            build_overlay_network(
                ip, 10, rng=random.Random(1), dijkstra_batch_size=0
            )


class TestPartialSortNeighborSelection:
    """``k_smallest_stable`` must pick *exactly* the prefix a full stable
    argsort would — including across ties — so the partial-sort build
    chooses byte-identical neighbour pairs to the old O(n log n) path."""

    def test_matches_full_stable_argsort_prefix(self):
        gen = np.random.default_rng(3)
        for trial in range(60):
            n = int(gen.integers(1, 40))
            if trial % 2:
                row = gen.random(n)
            else:
                # integer-valued rows force heavy ties, the hard case for
                # partition-based selection
                row = gen.integers(0, 4, n).astype(float)
            for count in (1, 2, n // 2 + 1, n - 1, n, n + 3):
                if count < 1:
                    continue
                got = k_smallest_stable(row, count)
                want = np.argsort(row, kind="stable")[:count]
                assert np.array_equal(got, want), (row, count)

    def test_all_tied_row_keeps_index_order(self):
        row = np.zeros(9)
        assert k_smallest_stable(row, 4).tolist() == [0, 1, 2, 3]

    @pytest.mark.parametrize(
        "num_nodes,seeds",
        [(60, (1, 2, 3)), (600, (1, 2)), (2048, (1,))],
    )
    def test_build_identical_to_full_argsort_path(
        self, num_nodes, seeds, monkeypatch
    ):
        """End to end: the partial-sort build and the old full-argsort
        build produce identical overlays (same node placement, same
        neighbour pairs, same link figures) for every seed and size."""
        num_routers = max(120, math.ceil(num_nodes * 1.2))
        ip = IPNetwork(
            PowerLawTopologyGenerator(
                num_routers=num_routers, seed=num_nodes
            ).generate()
        )
        for seed in seeds:
            fast = build_overlay_network(ip, num_nodes, rng=random.Random(seed))
            with monkeypatch.context() as m:
                m.setattr(
                    overlay,
                    "k_smallest_stable",
                    lambda row, count: np.argsort(row, kind="stable"),
                )
                full = build_overlay_network(
                    ip, num_nodes, rng=random.Random(seed)
                )
            assert [(n.router_id, n.capacity) for n in fast.nodes] == [
                (n.router_id, n.capacity) for n in full.nodes
            ]
            assert [
                (l.endpoints, l.delay_ms, l.loss_rate, l.capacity_kbps)
                for l in fast.links
            ] == [
                (l.endpoints, l.delay_ms, l.loss_rate, l.capacity_kbps)
                for l in full.links
            ]
