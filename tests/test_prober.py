"""Unit and behavioural tests for the probing protocol (ACP/SP/RP)."""

import pytest

from repro.core.acp import ACPComposer
from repro.core.baselines import RandomProbingComposer, SelectiveProbingComposer
from repro.core.probe import Probe, ProbeFactory
from repro.core.prober import FinalSelectionPolicy, HopSelectionPolicy
from repro.model.function_graph import FunctionGraph
from tests.conftest import make_request, qv, rv


class TestProbe:
    def test_initial_probe_empty(self, micro_request):
        probe = ProbeFactory().initial(micro_request, 0.3)
        assert probe.assignment == {}
        assert probe.hops == 0
        assert probe.probing_ratio == 0.3

    def test_spawn_inherits_and_extends(self, micro_request, micro_registry):
        factory = ProbeFactory()
        parent = factory.initial(micro_request, 0.3)
        child = parent.spawn(
            factory.next_id(),
            0,
            micro_registry.component(0),
            qv(10.0, 0.001),
            rv(100, 1000),
            {},
        )
        assert child.covers(0)
        assert child.component_of(0).component_id == 0
        assert child.hops == 1
        assert child.parent_id == parent.probe_id
        assert child.collected_node_state[0] == rv(100, 1000)
        # parent untouched
        assert parent.assignment == {}


class TestACPComposition:
    def test_success_on_micro_system(self, micro_context, micro_request):
        composer = ACPComposer(micro_context, probing_ratio=1.0)
        outcome = composer.compose(micro_request)
        assert outcome.success
        assert outcome.composition is not None
        assert outcome.phi is not None and outcome.phi > 0
        assert outcome.probe_messages > 0

    def test_prefers_less_loaded_twin(self, micro_context, micro_request):
        """F1 has candidates on v1 (50 cpu) and v2 (100 cpu); the φ-minimal
        choice is the bigger/idler node v2 when link costs allow."""
        composer = ACPComposer(micro_context, probing_ratio=1.0)
        outcome = composer.compose(micro_request)
        chosen = outcome.composition.component(1)
        assert chosen.node_id == 2

    def test_load_shifts_choice(self, micro_context, micro_request):
        """Loading v2 heavily must flip the choice to v1."""
        micro_context.network.node(2).allocate(rv(90, 900))
        composer = ACPComposer(micro_context, probing_ratio=1.0)
        outcome = composer.compose(micro_request)
        assert outcome.composition.component(1).node_id == 1

    def test_probing_ratio_limits_messages(self, micro_context, micro_request):
        full = ACPComposer(micro_context, probing_ratio=1.0).compose(micro_request)
        micro_context.allocator.cancel_transient(micro_request.request_id)
        narrow_context = micro_context
        narrow = ACPComposer(narrow_context, probing_ratio=0.5).compose(micro_request)
        assert narrow.probe_messages <= full.probe_messages

    def test_no_candidates_fails(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[7]])  # nothing deployed for F7
        request = make_request(graph)
        outcome = ACPComposer(micro_context).compose(request)
        assert not outcome.success
        assert outcome.failure_reason == "no_candidates"

    def test_qos_budget_too_tight_fails(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[0], catalog[1]])
        request = make_request(graph, delay_budget=5.0)  # < any component delay
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(request)
        assert not outcome.success
        assert outcome.failure_reason in (
            "no_qualified_candidates",
            "no_qualified_composition",
        )

    def test_failure_cancels_transient_reservations(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[0], catalog[1]])
        # F0 alone (10 ms) fits, but any F1 extension (≥ 30 ms) does not
        request = make_request(graph, delay_budget=25.0)
        ACPComposer(micro_context, probing_ratio=1.0).compose(request)
        assert micro_context.allocator.transient_request_ids == ()
        for node in micro_context.network.nodes:
            assert node.allocated == rv(0, 0)

    def test_success_keeps_reservations_for_commit(
        self, micro_context, micro_request
    ):
        composer = ACPComposer(micro_context, probing_ratio=1.0)
        outcome = composer.compose(micro_request)
        assert outcome.success
        assert micro_request.request_id in (
            micro_context.allocator.transient_request_ids
        )
        # commit converts them into the session allocation
        micro_context.allocator.commit(outcome.composition)
        assert micro_context.allocator.transient_request_ids == ()

    def test_resource_starved_node_skipped(self, micro_context, micro_request):
        """With v1 and v2 both out of resources, composition must fail."""
        micro_context.network.node(1).allocate(rv(49, 499))
        micro_context.network.node(2).allocate(rv(99, 999))
        outcome = ACPComposer(micro_context, probing_ratio=1.0).compose(micro_request)
        assert not outcome.success

    def test_stale_state_can_mislead_selection(self, micro_context, micro_request):
        """Load v2 *below* the update threshold after a refresh: the global
        state still advertises it as idle, and the probe discovers the truth
        only on arrival (the hybrid approach's trade-off)."""
        node = micro_context.network.node(2)
        node.allocate(rv(9, 90))  # below 10% threshold: global state stale
        stale = micro_context.global_state.node_available(2)
        assert stale == rv(100, 1000)  # still the old value
        composer = ACPComposer(micro_context, probing_ratio=1.0)
        outcome = composer.compose(micro_request)
        # precise final selection still accounts for the true load
        assert outcome.success


class TestVariants:
    def test_sp_configuration(self, micro_context):
        sp = SelectiveProbingComposer(micro_context)
        assert sp.hop_policy is HopSelectionPolicy.GUIDED
        assert sp.final_policy is FinalSelectionPolicy.RANDOM
        assert sp.use_global_state

    def test_rp_configuration(self, micro_context):
        rp = RandomProbingComposer(micro_context)
        assert rp.hop_policy is HopSelectionPolicy.RANDOM
        assert rp.final_policy is FinalSelectionPolicy.PHI
        assert not rp.use_global_state

    def test_sp_succeeds_on_micro(self, micro_context, micro_request):
        outcome = SelectiveProbingComposer(micro_context, probing_ratio=1.0).compose(
            micro_request
        )
        assert outcome.success

    def test_rp_succeeds_on_micro(self, micro_context, micro_request):
        outcome = RandomProbingComposer(micro_context, probing_ratio=1.0).compose(
            micro_request
        )
        assert outcome.success

    def test_invalid_ratio_rejected(self, micro_context):
        with pytest.raises(ValueError, match="probing ratio"):
            ACPComposer(micro_context, probing_ratio=0.0)

    def test_tuner_attachment(self, micro_context):
        from repro.core.tuning import ProbingRatioTuner

        tuner = ProbingRatioTuner(target_success_rate=0.9)
        composer = ACPComposer(micro_context, tuner=tuner)
        assert composer.current_probing_ratio() == tuner.current_ratio()
        composer.detach_tuner()
        assert composer.current_probing_ratio() == composer.probing_ratio


class TestBoundedProbing:
    """Footnote 10's bounded composition probing (BCP)."""

    def test_composes_on_micro_system(self, micro_context, micro_request):
        from repro.core.bounded import BoundedProbingComposer

        outcome = BoundedProbingComposer(
            micro_context, probe_budget_total=4
        ).compose(micro_request)
        assert outcome.success

    def test_total_probes_bounded_by_budget(self):
        """Across random small systems, probe messages never exceed the
        request budget plus the returning probes."""
        import random as _random

        from repro.core.bounded import BoundedProbingComposer
        from tests.conftest import build_small_system, make_request

        for seed in range(5):
            system = build_small_system(seed=seed, num_nodes=12)
            context = system.composition_context(rng=_random.Random(seed))
            composer = BoundedProbingComposer(context, probe_budget_total=6)
            template = system.templates.sample(_random.Random(seed + 50))
            request = make_request(
                template.graph, delay_budget=500.0, loss_budget=0.4
            )
            outcome = composer.compose(request)
            context.allocator.cancel_transient(request.request_id)
            # per-level spawns sum to <= budget; returns add <= one level
            assert outcome.probe_messages <= 2 * composer.probe_budget_total

    def test_budget_split_clamps_to_pool(self, micro_context, micro_request):
        from repro.core.bounded import BoundedProbingComposer

        composer = BoundedProbingComposer(micro_context, probe_budget_total=100)
        # F0 has one candidate, F1 has two: shares clamp to pool sizes
        assert composer._function_budget(micro_request, 1.0, 1) == 1
        assert composer._function_budget(micro_request, 1.0, 2) == 2

    def test_minimum_one_probe_per_function(self, micro_context, micro_request):
        from repro.core.bounded import BoundedProbingComposer

        composer = BoundedProbingComposer(micro_context, probe_budget_total=1)
        assert composer._function_budget(micro_request, 1.0, 5) == 1

    def test_invalid_budget(self, micro_context):
        from repro.core.bounded import BoundedProbingComposer

        with pytest.raises(ValueError, match="probe_budget_total"):
            BoundedProbingComposer(micro_context, probe_budget_total=0)
