"""Tests for the experiment harness (specs, runner, figures, reporting).

Figure harnesses are exercised at a tiny custom scale so the whole file
stays fast; the real-scale runs live in benchmarks/.
"""

import dataclasses

import pytest

from repro.discovery.deployment import DeploymentProfile
from repro.experiments.config import (
    ALGORITHMS,
    ExperimentScale,
    FAST_SCALE,
    PAPER_SCALE,
    RunSpec,
    default_spec,
)
from repro.experiments.figures import (
    Fig8Result,
    FigureResult,
    Series,
    run_fig5a,
    run_fig6,
    run_fig8,
)
from repro.experiments.reporting import (
    format_fig8_table,
    format_figure_table,
    format_report_summary,
)
from repro.experiments.runner import make_composer, run_comparison, run_spec
from repro.simulation.system import SystemConfig
from repro.simulation.workload import QOS_LEVELS, RateSchedule

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_routers=120,
    duration_s=240.0,
    adaptability_duration_s=540.0,
    sampling_period_s=60.0,
    optimal_max_explored=3000,
)


def tiny_spec(algorithm="ACP", rate=30.0, seed=1):
    spec = default_spec(
        scale=TINY_SCALE, algorithm=algorithm, num_nodes=40, rate_per_min=rate,
        seed=seed,
    )
    return dataclasses.replace(
        spec,
        system=dataclasses.replace(
            spec.system, deployment=DeploymentProfile(components_per_node=(2, 3))
        ),
    )


class TestRunSpec:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            tiny_spec(algorithm="Dijkstra")

    def test_adaptive_requires_acp(self):
        spec = tiny_spec(algorithm="Random")
        with pytest.raises(ValueError, match="only ACP"):
            dataclasses.replace(spec, adaptive=True)

    def test_with_helpers(self):
        spec = tiny_spec()
        assert spec.with_rate(99.0).schedule.rate_at(0) == 99.0
        assert spec.with_ratio(0.7).probing_ratio == 0.7
        assert spec.with_qos("high").qos_level.name == "high"
        assert spec.with_algorithm("Static").algorithm == "Static"

    def test_scales_expose_paper_defaults(self):
        assert PAPER_SCALE.num_routers == 3200
        assert PAPER_SCALE.duration_s == 6000.0
        assert FAST_SCALE.num_routers < PAPER_SCALE.num_routers

    def test_scale_system_builds_config(self):
        config = FAST_SCALE.system(num_nodes=123, seed=9)
        assert isinstance(config, SystemConfig)
        assert config.num_nodes == 123
        assert config.seed == 9


class TestRunner:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_make_composer_names_match(self, algorithm, small_system):
        context = small_system.composition_context()
        composer = make_composer(tiny_spec(algorithm=algorithm), context)
        assert composer.name == algorithm

    def test_run_spec_end_to_end(self):
        report = run_spec(tiny_spec())
        assert report.algorithm == "ACP"
        assert report.total_requests > 0
        assert 0.0 <= report.success_rate <= 1.0

    def test_run_comparison_shares_workload(self):
        reports = run_comparison(tiny_spec(), ("ACP", "Static"))
        assert set(reports) == {"ACP", "Static"}
        assert (
            reports["ACP"].total_requests == reports["Static"].total_requests
        )


class TestFigureHarnesses:
    def test_fig5a_tiny(self):
        result = run_fig5a(
            scale=TINY_SCALE,
            request_rates=(30.0,),
            probing_ratios=(0.2, 1.0),
            num_nodes=80,
            seed=1,
        )
        assert isinstance(result, FigureResult)
        series = result.series["30 reqs/min"]
        assert series.xs() == (0.2, 1.0)
        assert all(0.0 <= y <= 1.0 for y in series.ys())

    def test_fig6_tiny(self):
        success, overhead = run_fig6(
            scale=TINY_SCALE,
            request_rates=(30.0,),
            algorithms=("ACP", "RP"),
            num_nodes=80,
            seed=1,
        )
        assert set(success.series) == {"ACP", "RP"}
        assert set(overhead.series) == {"ACP", "RP"}

    def test_fig8_tiny(self):
        fixed, adaptive = run_fig8(scale=TINY_SCALE, num_nodes=80, seed=1)
        assert isinstance(fixed, Fig8Result)
        assert fixed.target_success_rate is None
        assert adaptive.target_success_rate is not None
        assert len(fixed.samples) >= 3
        # the schedule steps at thirds of the horizon
        assert fixed.schedule.rate_at(0.0) == 40.0
        assert fixed.schedule.rate_at(TINY_SCALE.adaptability_duration_s) == 60.0


class TestReporting:
    def test_figure_table_layout(self):
        result = FigureResult(
            "6a",
            "request rate",
            "success rate (%)",
            {
                "ACP": Series("ACP", ((20.0, 0.9), (40.0, 0.8))),
                "Static": Series("Static", ((20.0, 0.5),)),
            },
        )
        table = format_figure_table(result)
        assert "Figure 6a" in table
        lines = table.splitlines()
        assert "ACP" in lines[1] and "Static" in lines[1]
        assert "90.0" in table and "80.0" in table
        # missing point rendered as '-'
        assert lines[-1].strip().endswith("-")

    def test_overhead_table_not_percent(self):
        result = FigureResult(
            "6b", "rate", "overhead", {"ACP": Series("ACP", ((20.0, 123.4),))}
        )
        table = format_figure_table(result, percent=False)
        assert "123.4" in table

    def test_fig8_table(self):
        from repro.simulation.metrics import WindowSample

        result = Fig8Result(
            "8b",
            (WindowSample(300.0, 0.9, 10, 0.3),),
            RateSchedule.constant(40.0),
            0.9,
        )
        table = format_fig8_table(result)
        assert "adaptive, target 90%" in table
        assert "0.3" in table

    def test_report_summary(self):
        report = run_spec(tiny_spec())
        table = format_report_summary([report])
        assert "ACP" in table
        assert "success (%)" in table


class TestExports:
    def test_figure_to_csv_round_trips_values(self):
        from repro.experiments.reporting import figure_to_csv

        result = FigureResult(
            "6a",
            "rate",
            "success",
            {
                "ACP": Series("ACP", ((20.0, 0.9), (40.0, 0.825))),
                "Static": Series("Static", ((20.0, 0.5),)),
            },
        )
        csv = figure_to_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0] == "rate,ACP,Static"
        assert lines[1] == "20,0.9,0.5"
        assert lines[2] == "40,0.825,"  # missing point -> empty cell

    def test_csv_quotes_commas(self):
        from repro.experiments.reporting import figure_to_csv

        result = FigureResult(
            "x", "rate, per min", "y", {"A": Series("A", ((1.0, 0.5),))}
        )
        assert figure_to_csv(result).startswith('"rate, per min",A')

    def test_fig8_to_csv(self):
        from repro.experiments.reporting import fig8_to_csv
        from repro.simulation.metrics import WindowSample

        result = Fig8Result(
            "8b",
            (
                WindowSample(300.0, 0.9, 10, 0.3),
                WindowSample(600.0, 0.8, 12, None),
            ),
            RateSchedule.constant(40.0),
            0.9,
        )
        csv = fig8_to_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0] == "time_s,load_reqs_per_min,success_rate,probing_ratio"
        assert lines[1] == "300,40,0.9,0.300"
        assert lines[2] == "600,40,0.8,"

    def test_report_to_dict_is_json_serialisable(self):
        import json

        from repro.experiments.reporting import report_to_dict

        report = run_spec(tiny_spec())
        payload = report_to_dict(report)
        parsed = json.loads(json.dumps(payload))
        assert parsed["algorithm"] == "ACP"
        assert parsed["total_requests"] == report.total_requests
        assert 0.0 <= parsed["success_rate"] <= 1.0
        assert isinstance(parsed["window_samples"], list)
