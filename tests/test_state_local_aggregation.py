"""Unit tests for local state views and the aggregation role."""

import pytest

from repro.state.aggregation import AggregationManager, RotationPolicy
from repro.state.global_state import GlobalStateManager
from repro.state.local_state import LocalStateError, LocalStateProvider
from tests.conftest import rv


class TestLocalState:
    @pytest.fixture
    def provider(self, micro_network):
        return LocalStateProvider(micro_network)

    def test_scope_is_self_plus_neighbors(self, provider):
        view = provider.view(0)
        assert view.scope == frozenset({0, 1, 2})

    def test_node_available_within_scope(self, micro_network, provider):
        view = provider.view(0)
        assert view.node_available(1) == micro_network.node(1).available

    def test_out_of_scope_rejected(self, micro_network, provider):
        # build a line topology where node 0 cannot see node 2
        from repro.model.node import Node
        from repro.topology.overlay import OverlayLink, OverlayNetwork

        nodes = [Node(i, i, rv(10, 10)) for i in range(3)]
        links = [
            OverlayLink(0, 0, 1, 1.0, 0.0, 100.0),
            OverlayLink(1, 1, 2, 1.0, 0.0, 100.0),
        ]
        line = OverlayNetwork(nodes, links)
        view = LocalStateProvider(line).view(0)
        with pytest.raises(LocalStateError, match="outside the local state"):
            view.node_available(2)

    def test_component_qos_lookup(self, micro_network, provider):
        view = provider.view(0)
        component = micro_network.node(1).components[0]
        assert view.component_qos(1, component.component_id) == component.qos

    def test_unknown_component_rejected(self, provider):
        view = provider.view(0)
        with pytest.raises(LocalStateError, match="not hosted"):
            view.component_qos(1, 999)

    def test_adjacent_link_bandwidth(self, micro_network, provider):
        view = provider.view(0)
        link = micro_network.adjacent_links(0)[0]
        assert view.link_available_kbps(link.link_id) == link.available_kbps

    def test_non_adjacent_link_rejected(self, micro_network, provider):
        view = provider.view(0)
        # link 1 connects v1-v2, not adjacent to v0
        with pytest.raises(LocalStateError, match="not adjacent"):
            view.link_available_kbps(1)

    def test_views_cached(self, provider):
        assert provider.view(0) is provider.view(0)


class TestAggregation:
    @pytest.fixture
    def global_state(self, micro_network):
        return GlobalStateManager(micro_network)

    def test_round_robin_rotation(self, micro_network, global_state):
        manager = AggregationManager(
            micro_network, global_state, policy=RotationPolicy.ROUND_ROBIN
        )
        assert manager.aggregation_node_id == 0
        manager.run_round()
        assert manager.aggregation_node_id == 1
        manager.run_round()
        manager.run_round()
        assert manager.aggregation_node_id == 0  # wrapped

    def test_least_loaded_rotation(self, micro_network, global_state):
        micro_network.node(0).allocate(rv(50, 100))
        micro_network.node(1).allocate(rv(5, 5))
        manager = AggregationManager(
            micro_network, global_state, policy=RotationPolicy.LEAST_LOADED
        )
        # node 2 is untouched and therefore least loaded
        assert manager.aggregation_node_id == 2

    def test_broadcast_message_accounting(self, micro_network, global_state):
        manager = AggregationManager(micro_network, global_state)
        cost = manager.run_round()
        assert cost == len(micro_network) - 1
        assert manager.broadcast_messages == cost
        manager.run_round()
        assert manager.broadcast_messages == 2 * cost

    def test_history_records_roles(self, micro_network, global_state):
        manager = AggregationManager(micro_network, global_state)
        manager.run_round()
        manager.run_round()
        assert manager.history == [0, 1, 2]

    def test_invalid_period_rejected(self, micro_network, global_state):
        with pytest.raises(ValueError, match="period"):
            AggregationManager(micro_network, global_state, period_s=0.0)
