"""Fixture: half of an import cycle between undeclared packages."""

import repro.beta.two  # line 3: cycle edge alpha -> beta


def ping():
    return repro.beta.two
