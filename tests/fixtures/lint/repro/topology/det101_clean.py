"""Fixture: seeded RNG use the determinism rule must accept."""

import random
from random import Random


def seeded_instances(seed: int):
    a = random.Random(seed)
    b = Random(seed * 7 + 1)  # repro-lint: disable=DET150 -- fixture shows DET101-clean shapes; registry membership is DET150's own fixture
    c = random.Random(x=3)
    return a, b, c


def injected_draws(rng: random.Random):
    return rng.random() + rng.randint(0, 10)


def seeded_numpy(np, seed: int):
    generator = np.random.default_rng(seed)
    return generator
