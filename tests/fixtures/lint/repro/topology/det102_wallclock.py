"""Fixture: wall-clock reads outside the observability timer module."""

import time
from time import perf_counter  # line 4: wall-clock import
from datetime import datetime


def stamp():
    a = time.time()  # line 9: wall clock
    b = time.monotonic()  # line 10: wall clock
    c = perf_counter()  # line 11: wall clock via direct import
    d = datetime.now()  # line 12: wall clock
    return a, b, c, d
