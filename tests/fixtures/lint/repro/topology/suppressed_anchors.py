"""Fixture: suppression anchoring on multi-line statements and decorated defs.

Both markers sit on their own comment line; the first must shield the
first line of the multi-line statement below it, the second must travel
past the decorator to the ``def`` line (where def-anchored rules report).
"""

import time

from repro.observability.hotpath import hot_path


def timed():
    # repro-lint: disable=DET102 -- fixture: marker above a multi-line call anchors to its first line
    return time.time(
        # a continuation line; the violation reports at the call above
    )


# repro-lint: disable=HOT506 -- fixture: marker above a decorated def anchors past the decorator
@hot_path(budget="roughly linear")
def sketch():
    return None
