"""Fixture: justified suppressions silence exactly the named rule."""


def trailing_form(dirty):
    pool = set(dirty)
    for item in pool:  # repro-lint: disable=DET103 -- accumulates into a set; order unobservable
        print(item)


def standalone_form(dirty, np):
    pool = set(dirty)
    # repro-lint: disable=DET103 -- feeds an .any() reduction only
    return np.fromiter(pool, dtype=int)


def disable_all(rng_module):
    import random

    return random.random()  # repro-lint: disable=all -- fixture exercising the kill switch


def wrong_code_does_not_hide(dirty):
    pool = set(dirty)
    return list(pool)  # repro-lint: disable=REC301 -- wrong code: DET103 still fires here
