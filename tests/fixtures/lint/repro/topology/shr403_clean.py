"""Fixture: a listener registration with a close() teardown (SHR403 clean)."""


class LivenessWatcher:
    def __init__(self, node) -> None:
        self._node = node
        self._down = set()
        node.add_liveness_listener(self._on_change)

    def _on_change(self, node) -> None:
        if node.alive:
            self._down.discard(node.node_id)
        else:
            self._down.add(node.node_id)

    def close(self) -> None:
        self._node.remove_liveness_listener(self._on_change)
