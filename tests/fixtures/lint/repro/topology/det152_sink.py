"""Fixture: the module a slot-bound stream leaks into (DET152's sink)."""


def consume(rng):
    return rng.random()
