"""Fixture: unordered iteration feeding ordering-sensitive sinks."""

from typing import Set


def loop_over_literal():
    for item in {3, 1, 2}:  # line 7: set literal into a for loop
        print(item)


def materialise(values):
    chosen = set(values)
    return list(chosen)  # line 13: set into list()


def keys_loop(mapping):
    for key in mapping.keys():  # line 17: dict.keys() into a for loop
        print(key)


def annotated_param(dirty: Set[int], rng):
    return rng.sample(dirty, 2)  # line 22: set into an RNG draw


def comprehension_over_union(left, right):
    both = set(left) | set(right)
    return [item * 2 for item in both]  # line 27: set union comprehension
