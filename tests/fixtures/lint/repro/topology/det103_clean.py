"""Fixture: set handling the determinism rule must accept."""

from typing import Set


def sorted_iteration(dirty: Set[int]):
    for item in sorted(dirty):
        print(item)
    return [item for item in sorted(dirty)]


def order_free_folds(dirty: Set[int]):
    return (
        len(dirty),
        min(dirty),
        max(dirty),
        sum(dirty),
        any(item > 3 for item in dirty),
        all(item >= 0 for item in dirty),
        7 in dirty,
    )


def set_to_set(dirty: Set[int], other: Set[int]):
    merged = dirty | other
    merged.update(other)
    return frozenset(merged)


def plain_sequences(items):
    for item in items:
        print(item)
    return list(items)
