"""Fixture: every DET101 shape the determinism rule must catch."""

import random
from random import choice, shuffle  # line 4: imported module-level draws


def unseeded_instances():
    a = random.Random()  # line 8: no seed
    b = Random()  # line 9: bare unseeded constructor
    return a, b


def global_draws():
    x = random.random()  # line 14: module-level draw
    y = random.randint(0, 10)  # line 15: module-level draw
    return x, y


def module_as_rng(rng=None):
    rng = rng or random  # line 20: module object used as the RNG
    return rng


def numpy_global(np):
    np.random.shuffle([1, 2, 3])  # line 25: global numpy RNG
    g = np.random.default_rng()  # line 26: unseeded generator
    return g
