"""Fixture: module-level mutable containers (SHR401)."""

from collections import defaultdict
from typing import Dict, List

REGIONS = {}
ACTIVE: List[int] = []
LOOKUP = dict(alpha=1)
BY_KIND: Dict[str, list] = defaultdict(list)
__all__ = ["REGIONS", "ACTIVE", "LOOKUP", "BY_KIND"]
LIMIT = 16
NAMES = ("alpha", "beta")
