"""Fixture: frozen module-level state (SHR401 clean)."""

from types import MappingProxyType
from typing import Mapping

REGIONS: Mapping[str, int] = MappingProxyType({"alpha": 1, "beta": 2})
ACTIVE = (1, 2, 3)
NAMES = frozenset({"alpha", "beta"})
LIMIT = 16
