"""Fixture: the timer module — the one place wall clocks are allowed."""

from time import perf_counter


def profile():
    start = perf_counter()
    return perf_counter() - start
