"""Fixture: instance caches on the bounded LRU (SHR402 clean)."""

from repro.model.lru import LRUDict


class RowScorer:
    def __init__(self, capacity: int) -> None:
        self._row_cache = LRUDict(capacity=capacity)
        self._score_memo = LRUDict(capacity=capacity)
        self._bounds = {}
        self.capacity = capacity
