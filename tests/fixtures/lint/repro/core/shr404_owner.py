"""Fixture: the class another subsystem mutates (SHR404's owner)."""


class ControlChannel:
    def __init__(self) -> None:
        self.deliveries = 0
        self.loss_probability = 0.0
