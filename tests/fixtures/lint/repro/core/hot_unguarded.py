"""Fixture: unguarded recorder traffic on a hot path (repro.core)."""


def compose(recorder, request):
    recorder.emit("probe.start", request_id=request)  # line 5: unguarded
    result = request * 2
    recorder.inc("probe.messages")  # line 7: unguarded
    recorder.observe("phase.compose", 0.1)  # line 8: unguarded
    return result


class Router:
    def __init__(self, recorder):
        self.recorder = recorder

    def churn(self):
        self.recorder.set_gauge("router.trees", 3)  # line 17: unguarded
