"""Fixture: instance caches on bare containers (SHR402)."""

from typing import Dict, Tuple


class RowScorer:
    def __init__(self, capacity: int) -> None:
        self._row_cache = {}
        self._score_memo: Dict[Tuple[int, int], float] = dict()
        self._bounds = {}
        self.capacity = capacity
