"""Fixture: budget violations inside @hot_path functions (HOT501-506)."""

import numpy as np

from repro.observability.hotpath import hot_path


class Wavefront:
    def __init__(self, network, table, recorder) -> None:
        self.network = network
        self._table = table
        self.recorder = recorder

    @hot_path(budget="O(P × k)")
    def expand(self, pool):
        ranked = sorted(self._table.items())
        matrix = np.zeros((len(pool), len(pool)))
        for _key, value in self._table.items():
            matrix[0][0] += value
        label = f"expand:{len(pool)}"
        print(label)
        return ranked, matrix

    @hot_path(budget="O(P)")
    def gather(self):
        return collect(self.network)

    @hot_path(budget="fast")
    def misbudgeted(self):
        return None


def collect(network):
    return list(network.nodes)
