"""Fixture: every guard shape the recorder-discipline rule accepts."""


def direct_guard(recorder, request):
    if recorder.enabled:
        recorder.emit("probe.start", request_id=request)
    return request


def alias_guard(recorder, items):
    observing = recorder.enabled
    if observing:
        recorder.inc("probe.messages", len(items))
    return items


def early_return_guard(recorder, outcome):
    if not recorder.enabled:
        return outcome
    recorder.observe("phase.compose", 0.5)
    recorder.emit("probe.commit", phi=outcome)
    return outcome


def early_return_alias(recorder, outcome):
    observing = recorder.enabled
    if not observing:
        return outcome
    recorder.set_gauge("router.trees", 1)
    return outcome


class Tuner:
    def __init__(self, recorder):
        self.recorder = recorder

    def decide(self, alpha):
        if self.recorder.enabled:
            self.recorder.emit("tuner.decision", alpha=alpha)
        return alpha
