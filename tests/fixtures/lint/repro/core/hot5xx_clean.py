"""Fixture: @hot_path code that stays inside its budget (HOT5xx clean)."""

from repro.observability.hotpath import hot_path


class Wavefront:
    def __init__(self, recorder, table) -> None:
        self.recorder = recorder
        self._table = table

    @hot_path(budget="O(P × k)")
    def expand(self, probes):
        total = 0
        for probe in probes:
            total += probe
        if self.recorder.enabled:
            self.recorder.emit("expand", total=f"probes:{total}")
        if total < 0:
            raise ValueError(f"negative beam mass {total}")
        return total
