"""Fixture: a budget-table function missing its @hot_path marker (HOT506).

The fixture tree reuses the real module name ``repro.core.prober`` so the
``REQUIRED_HOT_PATHS`` table matches ``ProbingComposer.compose``.
"""


class ProbingComposer:
    def compose(self, request):
        return request
