"""Fixture: reading a foreign object and mutating your own (SHR404 clean)."""

from repro.core.shr404_owner import ControlChannel


class FaultPlanner:
    def __init__(self) -> None:
        self.planned_loss = 0.0

    def plan(self, channel: ControlChannel) -> float:
        self.planned_loss = channel.loss_probability
        return self.planned_loss
