"""Fixture: unguarded recorder calls are fine off the hot path."""


def run_window(recorder, window):
    recorder.emit("window.close", index=window)
    recorder.inc("windows")
    return window
