"""Fixture: a slot-bound stream staying inside its consumer (DET152 clean).

Same shape as the escape fixture, but the test registry declares
``repro.topology`` as this slot's consumer, so the flow is sanctioned.
"""

import random

from repro.topology.det152_sink import consume


def build(seed: int):
    rng = random.Random(seed + 14)
    consume(rng)
    return rng
