"""Fixture: a declared slot colliding with another slot (DET151).

The test registry declares this module's ``seed + 31`` slot *and* a
second slot in another subsystem at the same absolute stream.
"""

import random


def build_churn(seed: int):
    return random.Random(seed + 31)
