"""Fixture: the branch draws from its own declared stream (DET153 clean).

The test registry declares ``seed + 21`` for the burst stream, so
toggling ``spec.enable_burst`` cannot shift the main stream's draws.
"""

import random


def generate(spec, seed: int):
    rng = random.Random(seed)
    if spec.enable_burst:
        burst_rng = random.Random(seed + 21)
        burst_rng.random()
    return rng.random()
