"""Fixture: seed derivations with no registry slot (DET150)."""

import random


def build_streams(seed: int):
    churn = random.Random(seed + 99)
    probe = random.Random(seed * 5 + 2)
    return churn, probe


def spawn_generator(workload_seed: int, generator_factory):
    return generator_factory(seed=workload_seed + 7)
