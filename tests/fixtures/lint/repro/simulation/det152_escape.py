"""Fixture: a slot-bound stream escaping its declared consumer (DET152).

The test registry declares ``seed + 13`` with consumer
``repro.simulation`` — passing the stream into ``repro.topology`` is the
escape.
"""

import random

from repro.topology.det152_sink import consume


def build(seed: int):
    rng = random.Random(seed + 13)
    consume(rng)
    return rng
