"""Fixture: cross-subsystem attribute writes (SHR404).

``ControlChannel`` lives in ``repro.core``; a ``repro.simulation``
function writing its attributes bypasses the GlobalStateManager funnel.
"""

from repro.core.shr404_owner import ControlChannel


def sabotage(channel: ControlChannel) -> None:
    channel.loss_probability = 0.5
    channel.deliveries += 1


class Injector:
    def arm(self, channel: ControlChannel) -> None:
        channel.loss_probability = 1.0
