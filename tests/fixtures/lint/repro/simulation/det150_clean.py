"""Fixture: declared derivations and pass-throughs (DET150 clean).

The test registry declares ``seed + 99`` for this module; pass-throughs
(``Random(seed)``, ``Random(0)``) never need a slot.
"""

import random


def build_streams(seed: int):
    churn = random.Random(seed + 99)
    direct = random.Random(seed)
    fixed = random.Random(0)
    return churn, direct, fixed
