"""Fixture: an upward import — simulation reaching into experiments."""

from repro.experiments.runner import run_specs  # line 3: upward import


def run():
    return run_specs
