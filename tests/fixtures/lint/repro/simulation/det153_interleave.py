"""Fixture: draws interleaved across a config-dependent branch (DET153)."""

import random


def generate(spec, seed: int):
    rng = random.Random(seed)
    if spec.enable_burst:
        rng.random()
    return rng.random()
