"""Fixture: a package that never declared its place in the layer DAG."""

from repro.model import component  # line 3: 'mystery' is not in LAYERS


def peek():
    return component
