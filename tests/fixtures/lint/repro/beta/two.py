"""Fixture: the other half of the alpha <-> beta import cycle."""

from repro.alpha import one  # line 3: cycle edge beta -> alpha


def pong():
    return one
