"""Unit tests for deployed components."""

import pytest

from tests.conftest import make_component, qv


class TestComponentValidation:
    def test_output_format_must_match_function(self, catalog):
        with pytest.raises(ValueError, match="output format"):
            make_component(0, catalog[0], 0, output_format="not-a-format")

    def test_input_formats_subset_of_function(self, catalog):
        with pytest.raises(ValueError, match="exceed"):
            make_component(0, catalog[0], 0, input_formats={"alien"})

    def test_at_least_one_input_format(self, catalog):
        with pytest.raises(ValueError, match="at least one"):
            make_component(0, catalog[0], 0, input_formats=set())

    def test_positive_max_input_rate(self, catalog):
        with pytest.raises(ValueError, match="max_input_rate"):
            make_component(0, catalog[0], 0, max_input_rate=0.0)


class TestComponentInterface:
    def test_accepts_matching_format_and_rate(self, catalog):
        component = make_component(0, catalog[0], 0, max_input_rate=100.0)
        assert component.accepts("fmt0", 100.0)

    def test_rejects_excess_rate(self, catalog):
        component = make_component(0, catalog[0], 0, max_input_rate=100.0)
        assert not component.accepts("fmt0", 100.1)

    def test_rejects_unknown_format(self, catalog):
        component = make_component(0, catalog[0], 0, input_formats={"fmt1"})
        assert not component.accepts("fmt0", 1.0)

    def test_output_rate_delegates_to_function(self, catalog):
        component = make_component(0, catalog.by_name("aggregation-00"), 0)
        assert component.output_rate(100.0) == pytest.approx(30.0)

    def test_compatible_with_checks_downstream_inputs(self, catalog):
        upstream = make_component(0, catalog[0], 0, output_format="fmt0")
        narrow = make_component(1, catalog[1], 1, input_formats={"fmt1"})
        wide = make_component(2, catalog[1], 1)
        assert not upstream.compatible_with(narrow)
        assert upstream.compatible_with(wide)

    def test_qos_exposed(self, catalog):
        component = make_component(0, catalog[0], 0, delay=12.0, loss=0.004)
        assert component.qos == qv(12.0, 0.004)

    def test_repr(self, catalog):
        component = make_component(3, catalog[0], 7)
        assert "c3" in repr(component)
        assert "v7" in repr(component)
