"""Unit tests for QoS schemas and vectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.model.qos import (
    DEFAULT_QOS_SCHEMA,
    MetricKind,
    MetricSpec,
    QoSSchema,
    QoSVector,
    combine_all,
    elementwise_max,
)


def qv(delay, loss=0.0):
    return QoSVector(DEFAULT_QOS_SCHEMA, [delay, loss])


class TestQoSSchema:
    def test_default_schema_metrics(self):
        assert DEFAULT_QOS_SCHEMA.names == ("delay", "loss_rate")
        assert DEFAULT_QOS_SCHEMA.kinds == (
            MetricKind.ADDITIVE,
            MetricKind.MULTIPLICATIVE_LOSS,
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            QoSSchema(
                [
                    MetricSpec("delay", MetricKind.ADDITIVE),
                    MetricSpec("delay", MetricKind.ADDITIVE),
                ]
            )

    def test_index_of_unknown_metric(self):
        with pytest.raises(KeyError, match="unknown QoS metric"):
            DEFAULT_QOS_SCHEMA.index_of("jitter")

    def test_equality_and_hash(self):
        other = QoSSchema(DEFAULT_QOS_SCHEMA.specs)
        assert other == DEFAULT_QOS_SCHEMA
        assert hash(other) == hash(DEFAULT_QOS_SCHEMA)

    def test_len(self):
        assert len(DEFAULT_QOS_SCHEMA) == 2


class TestQoSVectorConstruction:
    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expected 2 values"):
            QoSVector(DEFAULT_QOS_SCHEMA, [1.0])

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            qv(-1.0)

    def test_loss_of_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            qv(1.0, 1.0)

    def test_zero_vector(self):
        zero = QoSVector.zero()
        assert zero.values == (0.0, 0.0)

    def test_named_access(self):
        vector = qv(12.5, 0.01)
        assert vector["delay"] == 12.5
        assert vector["loss_rate"] == 0.01

    def test_repr_mentions_metric_names(self):
        assert "delay=3" in repr(qv(3.0))


class TestCombine:
    def test_delay_adds(self):
        assert qv(10.0).combine(qv(15.0))["delay"] == 25.0

    def test_loss_composes_multiplicatively(self):
        combined = qv(0.0, 0.1).combine(qv(0.0, 0.2))
        assert combined["loss_rate"] == pytest.approx(1 - 0.9 * 0.8)

    def test_zero_is_identity(self):
        vector = qv(30.0, 0.05)
        assert vector.combine(QoSVector.zero()).values == pytest.approx(vector.values)
        assert QoSVector.zero().combine(vector).values == pytest.approx(vector.values)

    def test_schema_mismatch_rejected(self):
        other_schema = QoSSchema([MetricSpec("delay", MetricKind.ADDITIVE)])
        with pytest.raises(ValueError, match="schema mismatch"):
            qv(1.0).combine(QoSVector(other_schema, [1.0]))

    def test_combine_all_empty_is_zero(self):
        assert combine_all([]) == QoSVector.zero()

    def test_combine_all_folds(self):
        total = combine_all([qv(10.0, 0.1), qv(5.0, 0.1), qv(1.0, 0.0)])
        assert total["delay"] == 16.0
        assert total["loss_rate"] == pytest.approx(1 - 0.9 * 0.9)


class TestSatisfies:
    def test_within_bounds(self):
        assert qv(10.0, 0.01).satisfies(qv(10.0, 0.01))

    def test_delay_violation(self):
        assert not qv(10.1, 0.0).satisfies(qv(10.0, 0.01))

    def test_loss_violation(self):
        assert not qv(0.0, 0.02).satisfies(qv(10.0, 0.01))


class TestAdditiveTransform:
    def test_delay_passes_through(self):
        assert qv(42.0, 0.0).additive_values()[0] == 42.0

    def test_loss_maps_to_neg_log_survival(self):
        value = qv(0.0, 0.5).additive_values()[1]
        assert value == pytest.approx(-math.log(0.5))

    def test_zero_loss_maps_to_zero(self):
        assert qv(0.0, 0.0).additive_values()[1] == 0.0

    def test_transform_makes_loss_additive(self):
        # survival probabilities multiply <=> transformed values add
        a, b = qv(0.0, 0.1), qv(0.0, 0.3)
        combined = a.combine(b)
        assert combined.additive_values()[1] == pytest.approx(
            a.additive_values()[1] + b.additive_values()[1]
        )


class TestUtilization:
    def test_exact_budget_is_one(self):
        requirement = qv(100.0, 0.1)
        assert qv(100.0, 0.1).utilization(requirement) == pytest.approx((1.0, 1.0))

    def test_zero_budget_with_zero_use(self):
        assert qv(0.0, 0.0).utilization(qv(0.0, 0.0)) == (0.0, 0.0)

    def test_zero_budget_with_nonzero_use_is_inf(self):
        assert qv(5.0, 0.0).utilization(qv(0.0, 0.1))[0] == math.inf

    def test_half_budget(self):
        assert qv(50.0, 0.0).utilization(qv(100.0, 0.1))[0] == pytest.approx(0.5)


class TestElementwiseMax:
    def test_picks_worst_per_metric(self):
        worst = elementwise_max(qv(10.0, 0.01), qv(5.0, 0.05))
        assert worst["delay"] == 10.0
        assert worst["loss_rate"] == 0.05

    def test_idempotent(self):
        vector = qv(3.0, 0.2)
        assert elementwise_max(vector, vector) == vector


# -- property-based tests ------------------------------------------------------

delays = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
losses = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
vectors = st.builds(lambda d, l: qv(d, l), delays, losses)


@given(vectors, vectors, vectors)
def test_combine_is_associative(a, b, c):
    left = a.combine(b).combine(c)
    right = a.combine(b.combine(c))
    assert left.values == pytest.approx(right.values)


@given(vectors, vectors)
def test_combine_is_commutative(a, b):
    assert a.combine(b).values == pytest.approx(b.combine(a).values)


@given(vectors, vectors)
def test_combine_never_improves_qos(a, b):
    """Both metrics are minimum-optimal: accumulation is monotone."""
    combined = a.combine(b)
    assert combined["delay"] >= a["delay"]
    assert combined["loss_rate"] >= a["loss_rate"] - 1e-12


@given(vectors, vectors)
def test_additive_transform_is_monotone(a, b):
    combined = a.combine(b)
    assert all(
        c >= x - 1e-9
        for c, x in zip(combined.additive_values(), a.additive_values())
    )


@given(vectors)
def test_satisfies_is_reflexive(a):
    assert a.satisfies(a)
