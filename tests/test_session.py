"""Unit tests for the Find/Process/Close session middleware."""

import pytest

from repro.core.acp import ACPComposer
from repro.middleware.session import (
    RecoveryPolicy,
    SessionError,
    SessionManager,
    SessionState,
)
from repro.model.function_graph import FunctionGraph
from tests.conftest import make_request, rv


@pytest.fixture
def manager(micro_context):
    composer = ACPComposer(micro_context, probing_ratio=1.0)
    return SessionManager(composer, micro_context.allocator, clock=lambda: 42.0)


class TestFind:
    def test_successful_find_creates_session(self, manager, micro_request):
        session_id, outcome = manager.find(micro_request)
        assert session_id is not None
        assert outcome.success
        session = manager.session(session_id)
        assert session.state is SessionState.COMPOSED
        assert session.created_at == 42.0
        assert manager.active_session_count == 1

    def test_failed_find_returns_null_session(self, manager, micro_context, catalog):
        graph = FunctionGraph.path([catalog[6]])  # undeployed function
        session_id, outcome = manager.find(make_request(graph))
        assert session_id is None
        assert not outcome.success
        assert manager.active_session_count == 0
        # no stray reservations
        assert micro_context.allocator.transient_request_ids == ()

    def test_find_commits_resources(self, manager, micro_context, micro_request):
        manager.find(micro_request)
        assert micro_context.allocator.active_session_count == 1

    def test_session_ids_unique(self, manager, micro_request, catalog):
        sid1, _ = manager.find(micro_request)
        second = make_request(
            FunctionGraph.path([catalog[0], catalog[1]]), request_id=1
        )
        sid2, _ = manager.find(second)
        assert sid1 != sid2

    def test_admission_race_leaves_composer_outcome_untouched(
        self, manager, micro_request, monkeypatch
    ):
        """Losing the post-probe admission race must not mutate the
        composer's outcome object in place — other holders (metrics,
        diagnostics) would see a successful composition silently flip to
        failed under them."""
        from repro.allocation.allocator import AdmissionError

        captured = {}
        original_compose = manager.composer.compose

        def spying_compose(request):
            outcome = original_compose(request)
            captured["outcome"] = outcome
            return outcome

        def losing_commit(composition):
            raise AdmissionError("lost the race")

        monkeypatch.setattr(manager.composer, "compose", spying_compose)
        monkeypatch.setattr(manager.allocator, "commit", losing_commit)
        session_id, outcome = manager.find(micro_request)
        assert session_id is None
        assert not outcome.success
        assert outcome.composition is None
        assert outcome.failure_reason == "admission_race"
        # the composer's original outcome is a distinct, unmodified object
        original = captured["outcome"]
        assert outcome is not original
        assert original.success
        assert original.composition is not None
        assert original.failure_reason is None
        assert manager.active_session_count == 0


class TestProcess:
    def test_processing_reports_stream_transform(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        result = manager.process(session_id, units_in=1000.0)
        assert result.units_in == 1000.0
        # two stages with selectivities from the catalog apply; output must
        # be positive and reflect loss
        assert 0.0 < result.units_out < 1000.0
        assert result.expected_delay_ms > 0.0
        assert 0.0 <= result.expected_loss_rate < 1.0

    def test_processing_accumulates(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        manager.process(session_id, 10.0)
        manager.process(session_id, 5.0)
        assert manager.session(session_id).units_processed == 15.0
        assert manager.session(session_id).state is SessionState.PROCESSING

    def test_zero_units(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        result = manager.process(session_id, 0.0)
        assert result.units_out == 0.0

    def test_negative_units_rejected(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        with pytest.raises(ValueError, match="non-negative"):
            manager.process(session_id, -1.0)

    def test_unknown_session_rejected(self, manager):
        with pytest.raises(SessionError, match="unknown or closed"):
            manager.process(999, 1.0)


class TestClose:
    def test_close_releases_resources(self, manager, micro_context, micro_request):
        before = [node.available for node in micro_context.network.nodes]
        session_id, _ = manager.find(micro_request)
        manager.close(session_id)
        after = [node.available for node in micro_context.network.nodes]
        assert before == after
        assert manager.active_session_count == 0

    def test_closed_session_unusable(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        manager.close(session_id)
        with pytest.raises(SessionError):
            manager.process(session_id, 1.0)
        with pytest.raises(SessionError):
            manager.close(session_id)

    def test_close_if_open_tolerates_missing(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        assert manager.close_if_open(session_id) is True
        assert manager.close_if_open(session_id) is False
        assert manager.close_if_open(9999) is False


class TestTermination:
    def test_terminate_by_node(self, manager, micro_context, micro_request):
        session_id, outcome = manager.find(micro_request)
        node_id = outcome.composition.component(0).node_id
        killed = manager.terminate_sessions_using_node(node_id)
        assert killed == 1
        assert manager.active_session_count == 0
        for node in micro_context.network.nodes:
            assert all(abs(v) < 1e-9 for v in node.allocated.values)

    def test_terminate_unrelated_node_is_noop(self, manager, micro_request):
        manager.find(micro_request)
        # node 2 hosts the unchosen twin (ACP picks v2 actually) — use a
        # node not in the composition
        session = manager.session(1)
        used = set(session.allocation.node_demands)
        unused = ({0, 1, 2} - used).pop()
        assert manager.terminate_sessions_using_node(unused) == 0
        assert manager.active_session_count == 1


@pytest.fixture
def clock():
    """A mutable simulated clock the recovery tests advance by hand."""
    return {"now": 0.0}


@pytest.fixture
def recovering_manager(micro_context, clock):
    composer = ACPComposer(micro_context, probing_ratio=1.0)
    return SessionManager(
        composer,
        micro_context.allocator,
        clock=lambda: clock["now"],
        recovery=RecoveryPolicy(recovery_deadline_s=30.0, detection_delay_s=2.0),
    )


def _disrupt(manager, session_id):
    """Disrupt the session via the node hosting its first component."""
    node_id = next(iter(manager.session(session_id).allocation.node_demands))
    return manager.terminate_sessions_using_node(node_id)


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="recovery_deadline_s"):
            RecoveryPolicy(recovery_deadline_s=0.0)
        with pytest.raises(ValueError, match="detection_delay_s"):
            RecoveryPolicy(detection_delay_s=-1.0)


class TestRecovery:
    def test_disruption_enters_recovering_and_releases_resources(
        self, recovering_manager, micro_context, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        assert _disrupt(recovering_manager, session_id) == 1
        assert recovering_manager.recovering_count == 1
        assert recovering_manager.sessions_disrupted == 1
        assert recovering_manager.sessions_killed == 0
        # the old resources are released immediately, not held hostage
        for node in micro_context.network.nodes:
            assert all(abs(v) < 1e-9 for v in node.allocated.values)

    def test_recovering_session_rejects_every_operation(
        self, recovering_manager, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        with pytest.raises(SessionError, match="recovering"):
            recovering_manager.process(session_id, 1.0)
        with pytest.raises(SessionError, match="recovering"):
            recovering_manager.close(session_id)
        with pytest.raises(SessionError, match="recovering"):
            recovering_manager.close_if_open(session_id)
        with pytest.raises(SessionError, match="recovering"):
            recovering_manager.session(session_id)

    def test_recover_pending_readmits(
        self, recovering_manager, clock, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        clock["now"] = 5.0
        assert recovering_manager.recover_pending() == 1
        session = recovering_manager.session(session_id)
        assert session.state is SessionState.COMPOSED
        assert session.recoveries == 1
        assert session.recovering_since is None
        assert recovering_manager.sessions_recovered == 1
        assert recovering_manager.sessions_killed == 0
        assert recovering_manager.mean_recovery_latency_s == pytest.approx(5.0)
        assert recovering_manager.recovery_probe_messages > 0
        # the re-admitted session is fully usable again
        result = recovering_manager.process(session_id, 10.0)
        assert result.units_out > 0.0

    def test_recovered_session_closes_cleanly(
        self, recovering_manager, micro_context, clock, micro_request
    ):
        before = [node.available for node in micro_context.network.nodes]
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        clock["now"] = 3.0
        recovering_manager.recover_pending()
        recovering_manager.close(session_id)
        after = [node.available for node in micro_context.network.nodes]
        assert before == after
        assert recovering_manager.active_session_count == 0

    def test_deadline_expiry_kills(
        self, recovering_manager, clock, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        clock["now"] = 31.0  # past the 30 s recovery deadline
        assert recovering_manager.recover_pending() == 0
        assert recovering_manager.recovering_count == 0
        assert recovering_manager.active_session_count == 0
        assert recovering_manager.sessions_killed == 1
        assert recovering_manager.sessions_recovered == 0
        with pytest.raises(SessionError, match="unknown or closed"):
            recovering_manager.process(session_id, 1.0)

    def test_failed_recompose_retries_until_deadline(
        self, recovering_manager, micro_context, clock, micro_request
    ):
        """A sweep that cannot re-compose leaves the session RECOVERING;
        a later sweep against healed topology re-admits it."""
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        # crash every candidate for F1 so re-composition must fail
        micro_context.network.node(1).fail()
        micro_context.network.node(2).fail()
        micro_context.router.set_down_nodes({1, 2})
        clock["now"] = 5.0
        assert recovering_manager.recover_pending() == 0
        assert recovering_manager.recovering_count == 1
        assert recovering_manager.sessions_killed == 0
        # no stray transient reservations from the failed attempt
        assert micro_context.allocator.transient_request_ids == ()
        micro_context.network.node(1).recover()
        micro_context.network.node(2).recover()
        micro_context.router.set_down_nodes(set())
        clock["now"] = 12.0
        assert recovering_manager.recover_pending() == 1
        assert recovering_manager.mean_recovery_latency_s == pytest.approx(12.0)

    def test_double_disruption_race_skips_recovering(
        self, recovering_manager, micro_request
    ):
        """A second fault in the same blast radius must not disrupt a
        session that is already recovering (it holds no resources)."""
        session_id, _ = recovering_manager.find(micro_request)
        session = recovering_manager.session(session_id)
        used = sorted(session.allocation.node_demands)
        assert _disrupt(recovering_manager, session_id) == 1
        for node_id in used:
            assert recovering_manager.terminate_sessions_using_node(node_id) == 0
        assert recovering_manager.sessions_disrupted == 1
        assert recovering_manager.recovering_count == 1

    def test_lifetime_expiry_while_recovering_abandons(
        self, recovering_manager, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        _disrupt(recovering_manager, session_id)
        assert recovering_manager.close_or_abandon(session_id) is True
        assert recovering_manager.active_session_count == 0
        assert recovering_manager.sessions_killed == 1
        assert recovering_manager.sessions_recovered == 0

    def test_close_or_abandon_still_closes_healthy_sessions(
        self, recovering_manager, micro_request
    ):
        session_id, _ = recovering_manager.find(micro_request)
        assert recovering_manager.close_or_abandon(session_id) is True
        assert recovering_manager.close_or_abandon(session_id) is False
        assert recovering_manager.sessions_killed == 0

    def test_without_policy_disruption_kills(self, manager, micro_request):
        session_id, _ = manager.find(micro_request)
        assert _disrupt(manager, session_id) == 1
        assert manager.active_session_count == 0
        assert manager.sessions_disrupted == 1
        assert manager.sessions_killed == 1
        assert manager.recover_pending() == 0  # no policy: nothing pending
