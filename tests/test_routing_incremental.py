"""Differential tests for incremental routing under churn.

The tentpole claim of the incremental router is that dirty-set
invalidation is *exact*: after any crash/recovery sequence, every answer
an incrementally-maintained router gives — distances, loss rows, paths,
QoS, bottleneck bandwidth, reachability — is identical to one computed by
a router freshly constructed with the same down set, and to the eager
all-pairs baseline (``incremental=False``).  Random meshes draw delays
from a continuous distribution, so shortest paths are unique and the
comparison can demand exact equality.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.routing import OverlayRouter, RoutingError
from tests.test_routing_differential import random_mesh


def random_churn_sequence(rng, num_nodes, steps):
    """Randomised down-set trajectory: each step crashes and/or recovers."""
    down = set()
    sequence = []
    for _ in range(steps):
        up = [n for n in range(num_nodes) if n not in down]
        crashes = rng.sample(up, k=min(len(up) - 1, rng.randrange(0, 3)))
        recoveries = rng.sample(sorted(down), k=min(len(down), rng.randrange(0, 3)))
        down |= set(crashes)
        down -= set(recoveries)
        sequence.append(frozenset(down))
    return sequence


def assert_routers_identical(incremental, fresh, network, down):
    n = len(network)
    for source in range(n):
        if source in down:
            continue
        inc_delay, inc_loss = incremental.virtual_link_rows(source)
        ref_delay, ref_loss = fresh.virtual_link_rows(source)
        live = [d for d in range(n) if d not in down]
        assert np.array_equal(inc_delay[live], ref_delay[live])
        assert np.array_equal(inc_loss[live], ref_loss[live])
        # crashed destinations must read unreachable either way
        for d in down:
            assert not np.isfinite(inc_delay[d])
            assert not incremental.reachable(source, d)
        inc_bw = incremental.bottleneck_bandwidth_row(source)
        ref_bw = fresh.bottleneck_bandwidth_row(source)
        assert np.array_equal(inc_bw[live], ref_bw[live])
        for dest in live:
            assert incremental.reachable(source, dest) == fresh.reachable(
                source, dest
            )
            if not fresh.reachable(source, dest):
                with pytest.raises(RoutingError):
                    incremental.overlay_path(source, dest)
                continue
            assert incremental.overlay_path(source, dest) == fresh.overlay_path(
                source, dest
            )
            assert incremental.virtual_link_qos(
                source, dest
            ) == fresh.virtual_link_qos(source, dest)
            assert incremental.available_bandwidth(
                source, dest
            ) == fresh.available_bandwidth(source, dest)


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_incremental_matches_fresh_router_under_churn(seed):
    network = random_mesh(seed, num_nodes=12, extra_edges=8)
    incremental = OverlayRouter(network, incremental=True)
    eager = OverlayRouter(network, incremental=False)
    rng = random.Random(seed * 31 + 7)
    for down in random_churn_sequence(rng, len(network), steps=6):
        # warm a few trees/caches *before* the event so invalidation — not
        # cold recomputation — is what the comparison exercises
        for source in rng.sample(range(len(network)), k=4):
            if source in down:
                continue
            incremental.virtual_link_rows(source)
            incremental.bottleneck_bandwidth_row(source)
        incremental.set_down_nodes(down)
        eager.set_down_nodes(down)
        fresh = OverlayRouter(network, incremental=True)
        fresh.set_down_nodes(down)
        assert_routers_identical(incremental, fresh, network, down)
        assert_routers_identical(eager, fresh, network, down)


def random_link_churn_sequence(rng, num_links, steps):
    """Randomised down-link trajectory: each step fails and/or heals."""
    down = set()
    sequence = []
    for _ in range(steps):
        up = [l for l in range(num_links) if l not in down]
        failures = rng.sample(up, k=min(len(up), rng.randrange(0, 3)))
        recoveries = rng.sample(sorted(down), k=min(len(down), rng.randrange(0, 3)))
        down |= set(failures)
        down -= set(recoveries)
        sequence.append(frozenset(down))
    return sequence


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=15, deadline=None)
def test_incremental_matches_fresh_router_under_link_churn(seed):
    """Per-link dirty-set invalidation is exact: after any link flap
    sequence the incremental router answers like a freshly-built one."""
    network = random_mesh(seed, num_nodes=12, extra_edges=8)
    incremental = OverlayRouter(network, incremental=True)
    eager = OverlayRouter(network, incremental=False)
    rng = random.Random(seed * 17 + 3)
    for down_links in random_link_churn_sequence(rng, len(network.links), steps=6):
        for source in rng.sample(range(len(network)), k=4):
            incremental.virtual_link_rows(source)
            incremental.bottleneck_bandwidth_row(source)
        incremental.set_down_links(down_links)
        eager.set_down_links(down_links)
        fresh = OverlayRouter(network, incremental=True)
        fresh.set_down_links(down_links)
        assert_routers_identical(incremental, fresh, network, set())
        assert_routers_identical(eager, fresh, network, set())


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=10, deadline=None)
def test_incremental_matches_under_mixed_node_and_link_churn(seed):
    """Interleaved node crashes and link flaps — the full fault cocktail's
    routing view — must stay exact under incremental maintenance."""
    network = random_mesh(seed, num_nodes=12, extra_edges=8)
    incremental = OverlayRouter(network, incremental=True)
    rng = random.Random(seed * 13 + 5)
    node_sequence = random_churn_sequence(rng, len(network), steps=5)
    link_sequence = random_link_churn_sequence(rng, len(network.links), steps=5)
    for down, down_links in zip(node_sequence, link_sequence):
        for source in rng.sample(range(len(network)), k=3):
            if source not in down:
                incremental.virtual_link_rows(source)
        incremental.set_down_nodes(down)
        incremental.set_down_links(down_links)
        fresh = OverlayRouter(network, incremental=True)
        fresh.set_down_nodes(down)
        fresh.set_down_links(down_links)
        assert_routers_identical(incremental, fresh, network, down)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_incremental_matches_under_bandwidth_churn(seed):
    """Interleaved bandwidth allocations must show through the live
    bottleneck queries regardless of tree invalidation."""
    network = random_mesh(seed, num_nodes=10, extra_edges=6)
    incremental = OverlayRouter(network, incremental=True)
    rng = random.Random(seed + 99)
    down = set()
    for step in range(5):
        for link in rng.sample(network.links, k=3):
            link.allocate_bandwidth(rng.uniform(0.0, link.available_kbps))
        victim = rng.randrange(len(network))
        if victim in down:
            down.discard(victim)
        else:
            down.add(victim)
        incremental.set_down_nodes(down)
        fresh = OverlayRouter(network, incremental=True)
        fresh.set_down_nodes(down)
        for a in range(len(network)):
            for b in range(len(network)):
                if a in down or b in down:
                    continue
                if fresh.reachable(a, b):
                    assert incremental.available_bandwidth(
                        a, b
                    ) == fresh.available_bandwidth(a, b)


class TestRowContracts:
    def test_virtual_link_rows_are_read_only(self):
        network = random_mesh(3)
        router = OverlayRouter(network)
        delay_row, loss_row = router.virtual_link_rows(0)
        with pytest.raises(ValueError):
            delay_row[1] = 0.0
        with pytest.raises(ValueError):
            loss_row[1] = 0.0

    def test_leaf_crash_patches_without_version_bump(self):
        """A crash that only prunes leaves keeps surviving trees' versions
        (consumers' cached columns stay valid) while still reading the
        crashed node as unreachable."""
        network = random_mesh(7, num_nodes=12, extra_edges=8)
        router = OverlayRouter(network)
        # find a node that is a leaf in every warmed tree
        for source in range(len(network)):
            router.virtual_link_rows(source)
        leaf = None
        for candidate in range(1, len(network)):
            if all(
                not router._trees[s].relay[candidate]
                for s in range(len(network))
                if s != candidate
            ):
                leaf = candidate
                break
        if leaf is None:
            pytest.skip("mesh has no universal leaf at this seed")
        versions = {
            s: router.row_version(s) for s in range(len(network)) if s != leaf
        }
        router.set_down_nodes({leaf})
        for s, version in versions.items():
            assert router.row_version(s) == version
            assert not router.reachable(s, leaf)

    def test_recovery_bumps_affected_versions(self):
        network = random_mesh(11, num_nodes=10, extra_edges=6)
        router = OverlayRouter(network)
        for source in range(len(network)):
            router.virtual_link_rows(source)
        router.set_down_nodes({4})
        router.set_down_nodes(set())  # recovery can create shortcuts
        # every tree that could reach a neighbour of v4 must have re-solved
        fresh = OverlayRouter(network)
        for source in range(len(network)):
            inc_delay, _ = router.virtual_link_rows(source)
            ref_delay, _ = fresh.virtual_link_rows(source)
            assert np.array_equal(inc_delay, ref_delay)

    def test_bottleneck_row_against_path_walk(self):
        network = random_mesh(5)
        router = OverlayRouter(network)
        rng = random.Random(5)
        for link in rng.sample(network.links, k=5):
            link.allocate_bandwidth(rng.uniform(0.0, link.available_kbps))
        for source in (0, 3, 7):
            row = router.bottleneck_bandwidth_row(source)
            assert row[source] == np.inf
            for dest in range(len(network)):
                if dest == source:
                    continue
                path = router.overlay_path(source, dest)
                expected = min(
                    network.link(link_id).available_kbps for link_id in path
                )
                assert row[dest] == pytest.approx(expected)

    def test_bottleneck_row_with_external_link_state(self):
        network = random_mesh(6)
        router = OverlayRouter(network)
        stale = np.full(len(network.links), 123.0)
        row = router.bottleneck_bandwidth_row(2, stale)
        for dest in range(len(network)):
            if dest != 2:
                assert row[dest] == pytest.approx(123.0)
