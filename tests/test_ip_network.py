"""Unit tests for IP-layer routing."""

import numpy as np
import pytest

from repro.topology.ip_network import IPNetwork
from repro.topology.powerlaw import PowerLawTopologyGenerator, RouterGraph, RouterLink


@pytest.fixture(scope="module")
def small_ip():
    """A hand-built 4-router line with known delays: 0 -1- 1 -2- 2 -4- 3."""
    links = (
        RouterLink(0, 0, 1, 1.0, 1000.0, 0.0),
        RouterLink(1, 1, 2, 2.0, 1000.0, 0.0),
        RouterLink(2, 2, 3, 4.0, 1000.0, 0.0),
    )
    return IPNetwork(RouterGraph(4, links))


class TestShortestPaths:
    def test_direct_link(self, small_ip):
        assert small_ip.delay(0, 1) == 1.0

    def test_multi_hop_sums(self, small_ip):
        assert small_ip.delay(0, 3) == 7.0

    def test_self_delay_zero(self, small_ip):
        assert small_ip.delay(2, 2) == 0.0

    def test_symmetric(self, small_ip):
        assert small_ip.delay(0, 3) == small_ip.delay(3, 0)

    def test_delays_from_shape(self, small_ip):
        matrix = small_ip.delays_from([0, 2])
        assert matrix.shape == (2, 4)
        assert matrix[0, 3] == 7.0
        assert matrix[1, 0] == 3.0

    def test_delays_between_square(self, small_ip):
        matrix = small_ip.delays_between([0, 1, 3])
        assert matrix.shape == (3, 3)
        assert matrix[0, 2] == 7.0
        assert np.allclose(matrix, matrix.T)

    def test_hop_counts(self, small_ip):
        hops = small_ip.hop_counts_from([0])
        assert hops[0, 3] == 3.0
        assert hops[0, 1] == 1.0


class TestTriangleInequality:
    def test_on_generated_topology(self):
        graph = PowerLawTopologyGenerator(num_routers=120, seed=9).generate()
        network = IPNetwork(graph)
        routers = [0, 5, 11, 23, 47]
        delays = network.delays_between(routers)
        n = len(routers)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert delays[i, j] <= delays[i, k] + delays[k, j] + 1e-9
