"""Unit tests for stream processing nodes."""

import pytest

from repro.model.node import InsufficientResourcesError, Node
from tests.conftest import make_component, rv


@pytest.fixture
def node():
    return Node(0, router_id=42, capacity=rv(10, 100))


class TestHosting:
    def test_host_and_lookup(self, node, catalog):
        component = make_component(0, catalog[0], 0)
        node.host(component)
        assert node.hosts(0)
        assert node.components == (component,)

    def test_wrong_node_binding_rejected(self, node, catalog):
        component = make_component(0, catalog[0], node_id=9)
        with pytest.raises(ValueError, match="bound to node 9"):
            node.host(component)

    def test_duplicate_hosting_rejected(self, node, catalog):
        component = make_component(0, catalog[0], 0)
        node.host(component)
        with pytest.raises(ValueError, match="already hosted"):
            node.host(component)


class TestResourceState:
    def test_initially_everything_available(self, node):
        assert node.available == rv(10, 100)
        assert node.allocated == rv(0, 0)

    def test_allocate_reduces_availability(self, node):
        node.allocate(rv(4, 30))
        assert node.available == rv(6, 70)

    def test_allocate_to_exact_capacity(self, node):
        node.allocate(rv(10, 100))
        assert node.available == rv(0, 0)

    def test_overallocation_rejected_without_side_effects(self, node):
        node.allocate(rv(8, 10))
        with pytest.raises(InsufficientResourcesError, match="cannot allocate"):
            node.allocate(rv(3, 10))
        assert node.available == rv(2, 90)

    def test_release_restores(self, node):
        node.allocate(rv(4, 30))
        node.release(rv(4, 30))
        assert node.available == rv(10, 100)

    def test_release_more_than_allocated_rejected(self, node):
        node.allocate(rv(1, 1))
        with pytest.raises(ValueError, match="exceeds"):
            node.release(rv(2, 2))

    def test_can_allocate(self, node):
        assert node.can_allocate(rv(10, 100))
        assert not node.can_allocate(rv(10.5, 100))


class TestListeners:
    def test_listener_fires_on_allocate_and_release(self, node):
        seen = []
        node.add_change_listener(lambda n: seen.append(n.available))
        node.allocate(rv(1, 10))
        node.release(rv(1, 10))
        assert seen == [rv(9, 90), rv(10, 100)]

    def test_failed_allocation_does_not_notify(self, node):
        seen = []
        node.add_change_listener(lambda n: seen.append(1))
        with pytest.raises(InsufficientResourcesError):
            node.allocate(rv(11, 1))
        assert seen == []
