"""Router-neighbourhood index: byte-identity to the full router, churn
maintenance, LRU bounding, and the prune-spec resolver.

The index's whole value proposition is that for *members* of a source's
bounded tree, every figure it answers — delay, composed loss, path links,
bottleneck bandwidth — is byte-identical to the full
:class:`~repro.topology.routing.OverlayRouter` answer (module docstring
of :mod:`repro.topology.neighborhood` argues why; these tests check it
exactly, ``==`` on floats).  Churn tests are differential: after an
arbitrary fault/recovery sequence the incrementally maintained index must
answer identically to an index built fresh against the same router.
"""

import random

import numpy as np
import pytest

from repro.topology.neighborhood import (
    AUTO_PRUNE_FLOOR,
    NeighborhoodIndex,
    resolve_prune_k,
)
from repro.topology.routing import OverlayRouter
from tests.test_routing_differential import random_mesh


def assert_entry_matches_router(index, router, source, k):
    """Member figures must equal the full router's, byte for byte."""
    entry = index.entry(source, k)
    delay_row, loss_row = router.virtual_link_rows(source)

    # membership: exactly the k delay-nearest reachable nodes (delays are
    # continuous, so the prefix is unique)
    finite = np.isfinite(delay_row)
    reachable = int(finite.sum())
    assert len(entry) == min(k, reachable)
    full_order = np.argsort(delay_row, kind="stable")[:reachable]
    assert np.array_equal(entry.members, full_order[: len(entry)])

    members = entry.members
    assert entry.members[0] == source
    assert np.array_equal(entry.delay, delay_row[members])
    assert np.array_equal(entry.loss, loss_row[members])
    for position, node_id in enumerate(members.tolist()):
        assert entry.path_links(position) == router.overlay_path(source, node_id)
        assert entry.position(node_id) == position
    # positions() agrees with position() and flags non-members
    probe = np.arange(len(router.network))
    positions = entry.positions(probe)
    for node_id in probe.tolist():
        assert positions[node_id] == entry.position(node_id)
    assert ((positions >= 0).sum()) == len(entry)
    return entry


class TestBoundedTreeIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("k", [1, 4, 12, 50])
    def test_member_figures_match_full_router(self, seed, k):
        network = random_mesh(seed, num_nodes=25, extra_edges=30)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=k)
            for source in range(len(network)):
                assert_entry_matches_router(index, router, source, k)
            index.close()

    def test_live_bandwidth_matches_router(self):
        network = random_mesh(5, num_nodes=20, extra_edges=25)
        rng = random.Random(9)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=8)
            # perturb residual bandwidth so the min-fold has work to do
            for link in network.links:
                link.allocate_bandwidth(rng.uniform(0.0, 5_000.0))
            for source in range(len(network)):
                entry = index.entry(source)
                for node_id in entry.members.tolist():
                    got = index.live_bandwidth(source, node_id)
                    want = (
                        float("inf")
                        if node_id == source
                        else router.available_bandwidth(source, node_id)
                    )
                    assert got == want
                # non-members answer None (caller falls back to the router)
                non_members = set(range(len(network))) - set(
                    entry.members.tolist()
                )
                for node_id in sorted(non_members):
                    assert index.live_bandwidth(source, node_id) is None
            index.close()

    def test_stale_bottleneck_row_matches_router_row(self):
        network = random_mesh(6, num_nodes=20, extra_edges=25)
        rng = random.Random(10)
        stale = np.asarray(
            [rng.uniform(1_000.0, 9_000.0) for _ in network.links]
        )
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=9)
            for source in range(len(network)):
                entry = index.entry(source)
                row = index.stale_bottleneck_row(entry, stale, link_version=1)
                full = router.bottleneck_bandwidth_row(source, stale)
                assert np.array_equal(row, full[entry.members])
                # cached for the same link version, recomputed on a bump
                assert index.stale_bottleneck_row(entry, stale, 1) is row
                assert index.stale_bottleneck_row(entry, stale, 2) is not row
            index.close()

    def test_virtual_link_matches_router(self):
        network = random_mesh(7, num_nodes=18, extra_edges=20)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=7)
            for source in range(len(network)):
                entry = index.entry(source)
                for node_id in entry.members.tolist():
                    if node_id == source:
                        continue
                    got = index.virtual_link(source, node_id)
                    want = router.virtual_link(source, node_id)
                    assert got.overlay_link_ids == want.overlay_link_ids
                    assert got.qos.values == want.qos.values
            index.close()

    def test_k_at_least_n_covers_every_reachable_node(self):
        network = random_mesh(8, num_nodes=15, extra_edges=12)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=len(network))
            entry = index.entry(4)
            assert len(entry) == len(network)
            index.close()


class TestChurnMaintenance:
    def test_differential_under_random_churn(self):
        """After arbitrary node/link churn, the listener-maintained index
        answers exactly like one built fresh against the same router."""
        network = random_mesh(13, num_nodes=22, extra_edges=26)
        rng = random.Random(31)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=8)
            down_nodes: set = set()
            down_links: set = set()
            for _step in range(25):
                action = rng.random()
                if action < 0.35 and len(down_nodes) < 6:
                    down_nodes.add(rng.randrange(len(network)))
                    router.set_down_nodes(down_nodes)
                elif action < 0.5 and down_nodes:
                    down_nodes.discard(rng.choice(sorted(down_nodes)))
                    router.set_down_nodes(down_nodes)
                elif action < 0.8 and len(down_links) < 6:
                    down_links.add(rng.randrange(len(network.links)))
                    router.set_down_links(down_links)
                elif down_links:
                    down_links.discard(rng.choice(sorted(down_links)))
                    router.set_down_links(down_links)
                fresh = NeighborhoodIndex(router, k=8)
                for source in rng.sample(range(len(network)), 6):
                    a = index.entry(source)
                    b = fresh.entry(source)
                    assert np.array_equal(a.members, b.members)
                    assert np.array_equal(a.delay, b.delay)
                    assert np.array_equal(a.loss, b.loss)
                    assert np.array_equal(a.uplink, b.uplink)
                fresh.close()
            assert index.churn_drops > 0
            index.close()

    def test_crashed_source_yields_singleton_entry(self):
        network = random_mesh(2, num_nodes=10, extra_edges=8)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=5)
            router.set_down_nodes({3})
            entry = index.entry(3)
            assert entry.members.tolist() == [3]
            index.close()

    def test_close_detaches_churn_listener(self):
        network = random_mesh(2, num_nodes=10, extra_edges=8)
        with OverlayRouter(network) as router:
            baseline = len(router._churn_listeners)
            index = NeighborhoodIndex(router, k=5)
            assert len(router._churn_listeners) == baseline + 1
            index.close()
            index.close()  # idempotent
            assert len(router._churn_listeners) == baseline

    def test_router_close_clears_listeners(self):
        network = random_mesh(2, num_nodes=10, extra_edges=8)
        router = OverlayRouter(network)
        NeighborhoodIndex(router, k=5)
        router.close()
        assert router._churn_listeners == []


class TestBounding:
    def test_lru_capacity_holds_and_evictions_count(self):
        network = random_mesh(4, num_nodes=20, extra_edges=20)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=6, capacity=3)
            for source in range(len(network)):
                index.entry(source)
                assert index.cached_entry_count <= 3
            assert index.evictions > 0
            # an evicted source re-solves value-identically
            entry = index.entry(0)
            fresh = NeighborhoodIndex(router, k=6)
            assert np.array_equal(entry.members, fresh.entry(0).members)
            fresh.close()
            index.close()

    def test_memory_footprint_attributes_parts(self):
        network = random_mesh(4, num_nodes=20, extra_edges=20)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=6)
            empty = index.memory_footprint()
            for source in range(10):
                index.entry(source)
            loaded = index.memory_footprint()
            assert set(loaded) == {"entries", "scratch", "adjacency", "total"}
            assert loaded["entries"] > empty["entries"]
            assert loaded["total"] == sum(
                v for k, v in loaded.items() if k != "total"
            )
            index.close()

    def test_entries_are_o_of_k_not_n(self):
        network = random_mesh(4, num_nodes=40, extra_edges=50)
        with OverlayRouter(network) as router:
            index = NeighborhoodIndex(router, k=4)
            entry = index.entry(0)
            assert len(entry) == 4
            assert entry.members.nbytes == 4 * 8
            index.close()


class TestResolvePruneK:
    def test_none_disables(self):
        assert resolve_prune_k(None, 10_000) is None

    def test_auto_floor_and_growth(self):
        assert resolve_prune_k("auto", 100) == 100  # capped at N
        assert resolve_prune_k("auto", 1_000) == AUTO_PRUNE_FLOOR
        assert resolve_prune_k("auto", 10_000) == 800
        assert resolve_prune_k("auto", 50_000) == 1789

    def test_explicit_int_capped_at_n(self):
        assert resolve_prune_k(64, 10_000) == 64
        assert resolve_prune_k(5_000, 400) == 400

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="candidate_prune_k"):
            resolve_prune_k("fast", 100)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_prune_k(0, 100)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_prune_k(-3, 100)

    def test_index_rejects_bad_k(self):
        network = random_mesh(1, num_nodes=8, extra_edges=4)
        with OverlayRouter(network) as router:
            with pytest.raises(ValueError, match=">= 1"):
                NeighborhoodIndex(router, k=0)
