"""Unit tests for workload generation."""

import math

import pytest

from repro.model.functions import FunctionCatalog
from repro.model.templates import TemplateLibrary
from repro.simulation.workload import (
    QOS_LEVELS,
    QoSLevel,
    RateSchedule,
    WorkloadGenerator,
    WorkloadProfile,
)


@pytest.fixture(scope="module")
def templates():
    return TemplateLibrary(FunctionCatalog(size=20), size=6, seed=2)


def generator(templates, rate=60.0, level="normal", seed=0):
    return WorkloadGenerator(
        templates,
        RateSchedule.constant(rate),
        qos_level=QOS_LEVELS[level],
        seed=seed,
    )


class TestRateSchedule:
    def test_constant(self):
        schedule = RateSchedule.constant(40.0)
        assert schedule.rate_at(0.0) == 40.0
        assert schedule.rate_at(1e6) == 40.0

    def test_steps(self):
        schedule = RateSchedule.steps((0.0, 40.0), (100.0, 80.0), (200.0, 60.0))
        assert schedule.rate_at(0.0) == 40.0
        assert schedule.rate_at(99.9) == 40.0
        assert schedule.rate_at(100.0) == 80.0
        assert schedule.rate_at(250.0) == 60.0

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at time 0"):
            RateSchedule.steps((10.0, 40.0))

    def test_rates_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RateSchedule.steps((0.0, 0.0))

    def test_sorted_segments(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RateSchedule.steps((0.0, 10.0), (50.0, 20.0), (25.0, 30.0))

    def test_duplicate_starts_rejected(self):
        # a duplicate start silently shadowed the earlier rate before the
        # strict validation; now it is a hard error
        with pytest.raises(ValueError, match="strictly increasing"):
            RateSchedule.steps((0.0, 10.0), (50.0, 20.0), (50.0, 30.0))

    def test_next_change_after(self):
        schedule = RateSchedule.steps((0.0, 40.0), (100.0, 80.0), (200.0, 60.0))
        assert schedule.next_change_after(0.0) == 100.0
        assert schedule.next_change_after(99.9) == 100.0
        assert schedule.next_change_after(100.0) == 200.0
        assert schedule.next_change_after(200.0) is None
        assert schedule.next_change_after(1e9) is None
        assert RateSchedule.constant(40.0).next_change_after(0.0) is None

    def test_rate_at_matches_naive_scan(self):
        """Property: the bisect lookup equals the linear scan it replaced."""
        from hypothesis import given, strategies as st

        @given(
            starts=st.lists(
                st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
                min_size=0,
                max_size=8,
                unique=True,
            ),
            rates=st.lists(
                st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
                min_size=9,
                max_size=9,
            ),
            queries=st.lists(
                st.floats(min_value=-10.0, max_value=2e5, allow_nan=False),
                min_size=1,
                max_size=20,
            ),
        )
        def check(starts, rates, queries):
            times = [0.0] + sorted(starts)
            segments = tuple(zip(times, rates))
            schedule = RateSchedule(segments)
            for q in queries:
                naive = segments[0][1]
                for start, rate in segments:
                    if q >= start:
                        naive = rate
                    else:
                        break
                assert schedule.rate_at(q) == naive

        check()


class TestRateStepRegression:
    """The interarrival fix: arrivals immediately after a schedule step
    must occur at the *new* rate (boundary-truncated redraw).  Both tests
    fail on the pre-fix code, which drew the whole gap at the old rate."""

    def _arrivals(self, templates, schedule, horizon, seed=0):
        gen = WorkloadGenerator(templates, schedule, seed=seed)
        times, now = [], 0.0
        while True:
            now += gen.next_interarrival(now)
            if now > horizon:
                return times
            times.append(now)

    def test_arrival_count_just_after_step_up(self, templates):
        # 1 req/min until t=50, then 6000 req/min (100 req/s).  The gap in
        # flight at t=50 spans the step; pre-fix it kept the 1 req/min rate
        # (mean 60 s), so the window (50, 60] saw ~0 arrivals instead of
        # ~1000.
        schedule = RateSchedule.steps((0.0, 1.0), (50.0, 6000.0))
        times = self._arrivals(templates, schedule, horizon=60.0, seed=21)
        after_step = [t for t in times if 50.0 < t <= 60.0]
        assert len(after_step) > 500

    def test_gap_spanning_step_down_feels_new_rate(self, templates):
        # 60 req/min until t=10, then 0.006 req/min (mean gap ~1e4 s).  The
        # first arrival past the boundary must land far beyond it; pre-fix
        # it arrived within a few seconds, still at the old rate.
        schedule = RateSchedule.steps((0.0, 60.0), (10.0, 0.006))
        gen = WorkloadGenerator(templates, schedule, seed=22)
        now = 0.0
        while now <= 10.0:
            now += gen.next_interarrival(now)
        assert now > 100.0

    def test_flat_schedule_stream_unchanged(self, templates):
        """On a constant schedule the fix makes exactly one rng draw, so
        the arrival stream is byte-identical to a direct expovariate
        sequence — flat-Poisson experiments replay unchanged."""
        import random as _random

        gen = WorkloadGenerator(templates, RateSchedule.constant(60.0), seed=23)
        reference = _random.Random(23)
        now = 0.0
        for _ in range(200):
            gap = gen.next_interarrival(now)
            assert gap == reference.expovariate(1.0)
            now += gap


class TestArrivals:
    def test_mean_interarrival_matches_rate(self, templates):
        gen = generator(templates, rate=60.0, seed=1)
        samples = [gen.next_interarrival(0.0) for _ in range(4000)]
        # 60 req/min = 1 req/s
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.1)

    def test_requests_until_horizon(self, templates):
        gen = generator(templates, rate=60.0, seed=2)
        requests = list(gen.requests_until(300.0))
        # ~300 expected; allow wide tolerance
        assert 200 < len(requests) < 420
        assert all(r.arrival_time <= 300.0 for r in requests)
        ids = [r.request_id for r in requests]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestRequestAttributes:
    def test_requirements_within_profile(self, templates):
        gen = generator(templates, seed=3)
        profile = gen.profile
        for _ in range(100):
            request = gen.make_request(0.0)
            for index in range(len(request.function_graph)):
                requirement = request.requirement_for(index)
                assert (
                    profile.cpu_requirement[0]
                    <= requirement["cpu"]
                    <= profile.cpu_requirement[1]
                )
                assert (
                    profile.memory_requirement[0]
                    <= requirement["memory"]
                    <= profile.memory_requirement[1]
                )
            assert (
                profile.session_duration_s[0]
                <= request.duration
                <= profile.session_duration_s[1]
            )
            assert (
                profile.stream_rate[0]
                <= request.stream_rate
                <= profile.stream_rate[1]
            )

    def test_session_duration_is_5_to_15_minutes(self, templates):
        gen = generator(templates, seed=4)
        durations = [gen.make_request(0.0).duration for _ in range(200)]
        assert min(durations) >= 300.0
        assert max(durations) <= 900.0

    def test_tighter_level_means_tighter_budgets(self, templates):
        graph = templates[0].graph
        budgets = {}
        for level in ("loose", "normal", "high", "very_high"):
            gen = WorkloadGenerator(
                templates,
                RateSchedule.constant(60.0),
                qos_level=QOS_LEVELS[level],
                profile=WorkloadProfile(qos_jitter=(1.0, 1.0)),
                seed=5,
            )
            budgets[level] = gen.qos_requirement_for(graph)
        assert (
            budgets["very_high"]["delay"]
            < budgets["high"]["delay"]
            < budgets["normal"]["delay"]
            < budgets["loose"]["delay"]
        )
        assert (
            budgets["very_high"]["loss_rate"]
            < budgets["high"]["loss_rate"]
            < budgets["normal"]["loss_rate"]
        )

    def test_budget_scales_with_path_length(self, templates):
        gen = WorkloadGenerator(
            templates,
            RateSchedule.constant(60.0),
            profile=WorkloadProfile(qos_jitter=(1.0, 1.0)),
            seed=6,
        )
        graphs = sorted(
            (t.graph for t in templates.templates),
            key=lambda g: max(len(p) for p in g.all_paths()),
        )
        short, long = graphs[0], graphs[-1]
        if max(len(p) for p in short.all_paths()) < max(
            len(p) for p in long.all_paths()
        ):
            assert (
                gen.qos_requirement_for(short)["delay"]
                < gen.qos_requirement_for(long)["delay"]
            )

    def test_loss_budget_additive_in_log_space(self, templates):
        """The loss budget corresponds to the slack-scaled sum of expected
        per-stage -log(1-p) costs."""
        gen = WorkloadGenerator(
            templates,
            RateSchedule.constant(60.0),
            qos_level=QoSLevel("unit", delay_slack=1.0, loss_slack=1.0),
            profile=WorkloadProfile(qos_jitter=(1.0, 1.0)),
            seed=7,
        )
        graph = templates[0].graph
        stages = max(len(p) for p in graph.all_paths())
        requirement = gen.qos_requirement_for(graph)
        expected_log = stages * -math.log1p(
            -gen.profile.expected_component_loss
        ) + (stages - 1) * -math.log1p(-gen.profile.expected_link_loss)
        assert -math.log1p(-requirement["loss_rate"]) == pytest.approx(expected_log)

    def test_bandwidth_requirements_follow_stream_rate(self, templates):
        gen = generator(templates, seed=8)
        request = gen.make_request(0.0)
        edge_rates = request.function_graph.edge_rates(request.stream_rate)
        for edge, rate in edge_rates.items():
            assert request.bandwidth_for(edge) == pytest.approx(
                rate * gen.profile.kbps_per_unit
            )

    def test_invalid_qos_level(self):
        with pytest.raises(ValueError, match="positive"):
            QoSLevel("bad", delay_slack=0.0, loss_slack=1.0)


class TestTraceReplay:
    def test_recording_captures_requests(self, templates):
        from repro.simulation.workload import RecordingWorkload

        recorder = RecordingWorkload(generator(templates, seed=10))
        now = 0.0
        for _ in range(5):
            now += recorder.next_interarrival(now)
            recorder.make_request(now)
        assert len(recorder.trace) == 5
        cutoff = recorder.trace[2].arrival_time
        assert recorder.trace_since(cutoff) == recorder.trace[2:]

    def test_replay_preserves_requests_and_gaps(self, templates):
        from repro.simulation.workload import RecordingWorkload, ReplayWorkload

        recorder = RecordingWorkload(generator(templates, seed=11))
        now = 0.0
        for _ in range(4):
            now += recorder.next_interarrival(now)
            recorder.make_request(now)
        replay = ReplayWorkload(recorder.trace)
        assert len(replay) == 4
        replay_now = 0.0
        for original in recorder.trace:
            replay_now += replay.next_interarrival(replay_now)
            replayed = replay.make_request(replay_now)
            assert replayed.request_id == original.request_id
            assert replayed.stream_rate == original.stream_rate
            assert replayed.qos_requirement == original.qos_requirement
            assert replay_now == pytest.approx(original.arrival_time)

    def test_replay_exhaustion(self, templates):
        from repro.simulation.workload import RecordingWorkload, ReplayWorkload

        recorder = RecordingWorkload(generator(templates, seed=12))
        recorder.make_request(recorder.next_interarrival(0.0))
        replay = ReplayWorkload(recorder.trace)
        replay.make_request(replay.next_interarrival(0.0))
        assert replay.next_interarrival(100.0) > 1e11  # beyond any horizon
        with pytest.raises(IndexError, match="exhausted"):
            replay.make_request(200.0)

    def test_empty_trace_rejected(self):
        from repro.simulation.workload import ReplayWorkload

        with pytest.raises(ValueError, match="empty"):
            ReplayWorkload([])

    def test_trace_since_bisect_matches_scan(self, templates):
        from repro.simulation.workload import RecordingWorkload

        recorder = RecordingWorkload(generator(templates, seed=15))
        now = 0.0
        for _ in range(50):
            now += recorder.next_interarrival(now)
            recorder.make_request(now)
        for cutoff in (0.0, recorder.trace[10].arrival_time, now, now + 1.0):
            expected = tuple(
                r for r in recorder.trace if r.arrival_time >= cutoff
            )
            assert recorder.trace_since(cutoff) == expected

    def test_retention_bounds_memory(self, templates):
        """With a retention horizon the trace holds one period's worth of
        requests, not the whole run's (the unbounded-growth bug)."""
        from repro.simulation.workload import RecordingWorkload

        retention = 30.0
        recorder = RecordingWorkload(
            generator(templates, rate=60.0, seed=16), retention_s=retention
        )
        now = 0.0
        peak = 0
        for _ in range(2000):
            now += recorder.next_interarrival(now)
            recorder.make_request(now)
            peak = max(peak, len(recorder))
        # 60 req/min over a 30 s horizon is ~30 requests; the bound allows
        # generous Poisson fluctuation but is far below the 2000 generated
        assert peak < 200
        newest = recorder.trace[-1].arrival_time
        assert all(
            r.arrival_time >= newest - retention for r in recorder.trace
        )
        # retained tail still serves trace_since correctly
        cutoff = recorder.trace[len(recorder.trace) // 2].arrival_time
        assert all(
            r.arrival_time >= cutoff for r in recorder.trace_since(cutoff)
        )

    def test_retention_must_be_positive(self, templates):
        from repro.simulation.workload import RecordingWorkload

        with pytest.raises(ValueError, match="positive"):
            RecordingWorkload(generator(templates, seed=17), retention_s=0.0)

    def test_replay_drives_simulator(self):
        """A recorded trace replayed through a fresh copy of the same
        system produces the exact same request sequence (the profiling
        use case)."""
        import random as _random

        from repro.core import ACPComposer
        from repro.simulation.simulator import StreamProcessingSimulator
        from repro.simulation.workload import RecordingWorkload, ReplayWorkload
        from tests.conftest import build_small_system

        def build(make_workload):
            system = build_small_system(seed=13)
            workload = make_workload(system)
            composer = ACPComposer(
                system.composition_context(rng=_random.Random(2)),
                probing_ratio=0.5,
            )
            return StreamProcessingSimulator(
                system, composer, workload, sampling_period_s=300.0
            )

        recorder = {}

        def live_workload(system):
            recorder["w"] = RecordingWorkload(
                WorkloadGenerator(
                    system.templates, RateSchedule.constant(30.0), seed=14
                )
            )
            return recorder["w"]

        live = build(live_workload)
        live_report = live.run(600.0)
        assert live_report.total_requests == len(recorder["w"].trace)

        replay = build(lambda system: ReplayWorkload(recorder["w"].trace))
        replay_report = replay.run(600.0)
        assert replay_report.total_requests == live_report.total_requests
        live_ids = [r.request_id for r in live.metrics.records]
        replay_ids = [r.request_id for r in replay.metrics.records]
        assert live_ids == replay_ids
