"""Tests for the optimal (exhaustive branch-and-bound) composer.

The crucial property: on instances small enough to enumerate by hand, the
branch-and-bound result must coincide with a brute-force scan over *all*
assignments — pruning must never cut the true optimum.
"""

import itertools
import random

import pytest

from repro.core.baselines import RandomComposer
from repro.core.composer import CompositionEvaluator
from repro.core.optimal import OptimalComposer
from repro.model.function_graph import FunctionGraph
from tests.conftest import build_small_system, make_request, rv


def brute_force_best(context, request):
    """Enumerate every assignment; return (best_phi, assignment) or None."""
    evaluator = CompositionEvaluator(context)
    graph = request.function_graph
    pools = [
        context.registry.candidates(graph.node(i).function)
        for i in range(len(graph))
    ]
    best = None
    for combo in itertools.product(*pools):
        ids = [c.component_id for c in combo]
        if len(set(ids)) != len(ids):
            continue
        assignment = dict(enumerate(combo))
        if not evaluator.interface_compatible(request, assignment):
            continue
        composition = evaluator.build_component_graph(request, assignment)
        ok, _ = evaluator.feasible(composition)
        if not ok:
            continue
        phi = evaluator.phi(composition)
        if best is None or phi < best[0]:
            best = (phi, assignment)
    return best


class TestMicroOptimality:
    def test_matches_brute_force(self, micro_context, micro_request):
        outcome = OptimalComposer(micro_context).compose(micro_request)
        expected = brute_force_best(micro_context, micro_request)
        assert outcome.success
        assert expected is not None
        assert outcome.phi == pytest.approx(expected[0])

    def test_picks_idler_node(self, micro_context, micro_request):
        outcome = OptimalComposer(micro_context).compose(micro_request)
        assert outcome.composition.component(1).node_id == 2

    def test_counts_explored_partials(self, micro_context, micro_request):
        outcome = OptimalComposer(micro_context).compose(micro_request)
        assert outcome.probe_messages == outcome.explored >= 2

    def test_failure_when_nothing_qualifies(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[0], catalog[1]])
        request = make_request(graph, delay_budget=5.0)
        outcome = OptimalComposer(micro_context).compose(request)
        assert not outcome.success
        assert outcome.failure_reason == "no_qualified_composition"

    def test_no_candidates(self, micro_context, catalog):
        graph = FunctionGraph.path([catalog[6]])
        outcome = OptimalComposer(micro_context).compose(make_request(graph))
        assert not outcome.success
        assert outcome.failure_reason == "no_candidates"

    def test_invalid_cap(self, micro_context):
        with pytest.raises(ValueError, match="max_explored"):
            OptimalComposer(micro_context, max_explored=0)


class TestOptimalityOnRandomSystems:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_branch_and_bound_equals_brute_force(self, seed):
        """On seeded small systems, B&B must equal exhaustive enumeration."""
        system = build_small_system(seed=seed, num_nodes=10)
        context = system.composition_context(rng=random.Random(seed))
        rng = random.Random(seed + 100)
        template = system.templates.sample(rng)
        request = make_request(
            template.graph,
            delay_budget=400.0,
            loss_budget=0.3,
            cpu=3.0,
            memory=15.0,
        )
        outcome = OptimalComposer(context).compose(request)
        expected = brute_force_best(context, request)
        if expected is None:
            assert not outcome.success
        else:
            assert outcome.success
            assert outcome.phi == pytest.approx(expected[0])

    def test_never_worse_than_random(self):
        """φ(optimal) ≤ φ(random pick) whenever both succeed."""
        system = build_small_system(seed=9, num_nodes=10)
        context = system.composition_context(rng=random.Random(1))
        rng = random.Random(2)
        checked = 0
        for attempt in range(20):
            template = system.templates.sample(rng)
            request = make_request(
                template.graph, request_id=attempt, delay_budget=500.0,
                loss_budget=0.4,
            )
            optimal = OptimalComposer(context).compose(request)
            context.allocator.cancel_transient(request.request_id)
            random_pick = RandomComposer(context).compose(request)
            context.allocator.cancel_transient(request.request_id)
            if optimal.success and random_pick.success:
                assert optimal.phi <= random_pick.phi + 1e-9
                checked += 1
        assert checked > 0

    def test_exploration_cap_truncates_gracefully(self):
        system = build_small_system(seed=3, num_nodes=10)
        context = system.composition_context(rng=random.Random(0))
        template = system.templates.sample(random.Random(5))
        request = make_request(template.graph, delay_budget=500.0, loss_budget=0.4)
        composer = OptimalComposer(context, max_explored=3)
        outcome = composer.compose(request)
        assert outcome.explored <= 3
        # either it found something within the cap or failed cleanly
        assert outcome.success or outcome.failure_reason is not None
