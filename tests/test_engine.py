"""Unit tests for the event-driven simulation engine."""

import pytest

from repro.simulation.engine import EventScheduler, SchedulerError


@pytest.fixture
def scheduler():
    return EventScheduler()


class TestScheduling:
    def test_events_fire_in_time_order(self, scheduler):
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append("b"))
        scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(9.0, lambda: fired.append("c"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self, scheduler):
        fired = []
        for name in ("first", "second", "third"):
            scheduler.schedule_at(2.0, lambda n=name: fired.append(n))
        scheduler.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, scheduler):
        seen = []
        scheduler.schedule_at(3.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [3.5]

    def test_schedule_after_uses_current_time(self, scheduler):
        seen = []
        scheduler.schedule_at(2.0, lambda: scheduler.schedule_after(
            1.5, lambda: seen.append(scheduler.now)
        ))
        scheduler.run()
        assert seen == [3.5]

    def test_past_scheduling_rejected(self, scheduler):
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulerError, match="clock is at"):
            scheduler.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(SchedulerError, match="negative delay"):
            scheduler.schedule_after(-1.0, lambda: None)

    def test_infinite_time_rejected(self, scheduler):
        with pytest.raises(SchedulerError, match="finite"):
            scheduler.schedule_at(float("inf"), lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        event = scheduler.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_after_firing_is_noop(self, scheduler):
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.run()
        event.cancel()  # must not raise

    def test_len_ignores_cancelled(self, scheduler):
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        event.cancel()
        assert len(scheduler) == 1


class TestRunUntil:
    def test_stops_at_horizon(self, scheduler):
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(10.0, lambda: fired.append(10))
        scheduler.run_until(5.0)
        assert fired == [1]
        assert scheduler.now == 5.0
        scheduler.run_until(10.0)
        assert fired == [1, 10]

    def test_event_at_horizon_fires(self, scheduler):
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append(1))
        scheduler.run_until(5.0)
        assert fired == [1]

    def test_cascading_events_within_horizon(self, scheduler):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                scheduler.schedule_after(1.0, lambda: chain(n + 1))

        scheduler.schedule_at(0.0, lambda: chain(0))
        scheduler.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_backwards_horizon_rejected(self, scheduler):
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run_until(5.0)
        with pytest.raises(SchedulerError, match="before the clock"):
            scheduler.run_until(1.0)


class TestPeriodic:
    def test_fires_every_interval(self, scheduler):
        times = []
        scheduler.schedule_periodic(2.0, lambda: times.append(scheduler.now))
        scheduler.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_cancel_stops_future_firings(self, scheduler):
        times = []
        task = scheduler.schedule_periodic(2.0, lambda: times.append(scheduler.now))
        scheduler.run_until(5.0)
        task.cancel()
        scheduler.run_until(20.0)
        assert times == [2.0, 4.0]

    def test_first_at_override(self, scheduler):
        times = []
        scheduler.schedule_periodic(
            5.0, lambda: times.append(scheduler.now), first_at=1.0
        )
        scheduler.run_until(12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_invalid_interval(self, scheduler):
        with pytest.raises(SchedulerError, match="interval"):
            scheduler.schedule_periodic(0.0, lambda: None)


class TestRun:
    def test_max_events(self, scheduler):
        for i in range(10):
            scheduler.schedule_at(float(i), lambda: None)
        executed = scheduler.run(max_events=4)
        assert executed == 4
        assert len(scheduler) == 6

    def test_processed_counter(self, scheduler):
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.run()
        assert scheduler.processed == 2

    def test_step_on_empty_returns_false(self, scheduler):
        assert scheduler.step() is False


class TestHeapCompaction:
    """Cancelled events must not accumulate: the heap is compacted once
    they outnumber live ones, so it never exceeds twice the live count."""

    def test_len_matches_live_events(self, scheduler):
        events = [scheduler.schedule_at(float(i + 1), lambda: None) for i in range(10)]
        for event in events[:4]:
            event.cancel()
        assert len(scheduler) == 6

    def test_mass_cancel_bounds_heap(self, scheduler):
        events = [
            scheduler.schedule_at(float(i + 1), lambda: None) for i in range(1000)
        ]
        for event in events[:900]:
            event.cancel()
        assert len(scheduler) == 100
        assert len(scheduler._heap) <= 2 * len(scheduler)

    def test_schedule_cancel_churn_keeps_heap_empty(self, scheduler):
        """The periodic-task churn pattern: schedule, cancel, reschedule.
        Before compaction this grew the heap without bound."""
        for i in range(10_000):
            scheduler.schedule_at(float(i + 1), lambda: None).cancel()
        assert len(scheduler) == 0
        assert len(scheduler._heap) <= 1

    def test_double_cancel_counts_once(self, scheduler):
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(scheduler) == 1

    def test_cancel_after_firing_does_not_skew_len(self, scheduler):
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.run(max_events=1)
        event.cancel()  # fired already: must not decrement live count
        assert len(scheduler) == 1
        assert scheduler.run() == 1

    def test_compaction_preserves_firing_order(self, scheduler):
        fired = []
        events = [
            scheduler.schedule_at(float(i + 1), lambda i=i: fired.append(i))
            for i in range(20)
        ]
        for i in range(0, 20, 2):
            events[i].cancel()
        scheduler.run()
        assert fired == list(range(1, 20, 2))

    def test_run_until_with_cancelled_head(self, scheduler):
        fired = []
        head = scheduler.schedule_at(1.0, lambda: fired.append("cancelled"))
        scheduler.schedule_at(2.0, lambda: fired.append("kept"))
        head.cancel()
        scheduler.run_until(5.0)
        assert fired == ["kept"]
        assert len(scheduler) == 0
