"""Unit tests for overlay routing and virtual links."""

import pytest

from repro.topology.routing import OverlayRouter, RoutingError
from repro.model.node import Node
from repro.topology.overlay import OverlayLink, OverlayNetwork
from tests.conftest import rv


class TestShortestPaths:
    def test_direct_cheaper_path_wins(self, micro_router):
        # v0 -> v2: direct link is 25 ms, via v1 is 20 ms
        assert micro_router.overlay_path(0, 2) == (0, 1)
        assert micro_router.delay(0, 2) == pytest.approx(20.0)

    def test_single_hop(self, micro_router):
        assert micro_router.overlay_path(0, 1) == (0,)

    def test_self_path_empty(self, micro_router):
        assert micro_router.overlay_path(1, 1) == ()
        assert micro_router.delay(1, 1) == 0.0

    def test_paths_cached(self, micro_router):
        first = micro_router.overlay_path(0, 2)
        assert micro_router.overlay_path(0, 2) is first

    def test_unreachable_raises(self):
        nodes = [Node(0, 0, rv(1, 1)), Node(1, 1, rv(1, 1)), Node(2, 2, rv(1, 1))]
        links = [OverlayLink(0, 0, 1, 1.0, 0.0, 100.0)]
        router = OverlayRouter(OverlayNetwork(nodes, links))
        assert not router.reachable(0, 2)
        with pytest.raises(RoutingError, match="no overlay path"):
            router.overlay_path(0, 2)


class TestVirtualLinks:
    def test_qos_aggregates_along_path(self, micro_router):
        qos = micro_router.virtual_link_qos(0, 2)
        assert qos["delay"] == pytest.approx(20.0)
        expected_loss = 1 - (1 - 0.001) ** 2
        assert qos["loss_rate"] == pytest.approx(expected_loss)

    def test_co_located_zero_qos(self, micro_router):
        qos = micro_router.virtual_link_qos(2, 2)
        assert qos["delay"] == 0.0
        assert qos["loss_rate"] == 0.0

    def test_virtual_link_object(self, micro_router):
        vl = micro_router.virtual_link(0, 2)
        assert vl.src_node_id == 0
        assert vl.dst_node_id == 2
        assert vl.overlay_link_ids == (0, 1)
        assert not vl.co_located

    def test_co_located_virtual_link(self, micro_router):
        vl = micro_router.virtual_link(1, 1)
        assert vl.co_located

    def test_available_bandwidth_is_bottleneck(self, micro_network, micro_router):
        micro_network.link(1).allocate_bandwidth(9_000.0)
        try:
            assert micro_router.available_bandwidth(0, 2) == pytest.approx(1_000.0)
        finally:
            micro_network.link(1).release_bandwidth(9_000.0)

    def test_co_located_bandwidth_infinite(self, micro_router):
        assert micro_router.available_bandwidth(1, 1) == float("inf")

    def test_qos_cache_symmetric_pairs(self, micro_router):
        a = micro_router.virtual_link_qos(0, 2)
        b = micro_router.virtual_link_qos(2, 0)
        assert a == b
