"""Unit tests for composed component graphs."""

import math

import pytest

from repro.model.component_graph import ComponentGraph, VirtualLinkPath
from repro.model.function_graph import FunctionGraph
from repro.model.qos import QoSVector
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA, ResourceSchema, ResourceSpec, ResourceVector
from tests.conftest import make_component, make_request, qv, rv


def vl(src, dst, link_ids=(), delay=0.0, loss=0.0):
    return VirtualLinkPath(src, dst, tuple(link_ids), qv(delay, loss))


@pytest.fixture
def graph(catalog):
    return FunctionGraph.path([catalog[0], catalog[1]])


@pytest.fixture
def composed(catalog, graph):
    """F0 → c0@v0, F1 → c1@v1, one virtual link of 10 ms."""
    request = make_request(graph)
    assignment = {
        0: make_component(0, catalog[0], 0, delay=10.0, loss=0.01),
        1: make_component(1, catalog[1], 1, delay=20.0, loss=0.02),
    }
    links = {(0, 1): vl(0, 1, [5], delay=10.0, loss=0.005)}
    return ComponentGraph(request, assignment, links)


class TestValidation:
    def test_incomplete_assignment_rejected(self, catalog, graph):
        request = make_request(graph)
        with pytest.raises(ValueError, match="must cover every function"):
            ComponentGraph(request, {0: make_component(0, catalog[0], 0)}, {})

    def test_wrong_function_rejected(self, catalog, graph):
        request = make_request(graph)
        assignment = {
            0: make_component(0, catalog[0], 0),
            1: make_component(1, catalog[2], 1),  # wrong function for F1
        }
        with pytest.raises(ValueError, match="Eq. 2"):
            ComponentGraph(request, assignment, {(0, 1): vl(0, 1)})

    def test_missing_link_rejected(self, catalog, graph):
        request = make_request(graph)
        assignment = {
            0: make_component(0, catalog[0], 0),
            1: make_component(1, catalog[1], 1),
        }
        with pytest.raises(ValueError, match="links must cover"):
            ComponentGraph(request, assignment, {})

    def test_link_endpoint_mismatch_rejected(self, catalog, graph):
        request = make_request(graph)
        assignment = {
            0: make_component(0, catalog[0], 0),
            1: make_component(1, catalog[1], 1),
        }
        with pytest.raises(ValueError, match="starts at"):
            ComponentGraph(request, assignment, {(0, 1): vl(9, 1)})


class TestAccessors:
    def test_components_in_placement_order(self, composed):
        assert [c.component_id for c in composed.components] == [0, 1]

    def test_node_ids_deduplicated(self, catalog, graph):
        request = make_request(graph)
        assignment = {
            0: make_component(0, catalog[0], 3),
            1: make_component(1, catalog[1], 3),
        }
        composed = ComponentGraph(request, assignment, {(0, 1): vl(3, 3)})
        assert composed.node_ids() == (3,)

    def test_virtual_link_lookup(self, composed):
        assert composed.virtual_link((0, 1)).overlay_link_ids == (5,)

    def test_co_located_flag(self):
        assert vl(1, 1).co_located
        assert not vl(1, 2, [4]).co_located


class TestQoSAggregation:
    def test_path_qos_sums_components_and_links(self, composed):
        qos = composed.path_qos()[(0, 1)]
        assert qos["delay"] == pytest.approx(40.0)
        expected_loss = 1 - (1 - 0.01) * (1 - 0.005) * (1 - 0.02)
        assert qos["loss_rate"] == pytest.approx(expected_loss)

    def test_qos_satisfied_against_budget(self, composed):
        assert composed.qos_satisfied()  # budget 200ms / 0.2 from make_request

    def test_qos_violation_detected(self, catalog, graph):
        request = make_request(graph, delay_budget=30.0)
        assignment = {
            0: make_component(0, catalog[0], 0, delay=25.0),
            1: make_component(1, catalog[1], 1, delay=25.0),
        }
        composed = ComponentGraph(request, assignment, {(0, 1): vl(0, 1)})
        assert not composed.qos_satisfied()

    def test_component_qos_override(self, composed):
        override = {0: qv(100.0, 0.0), 1: qv(150.0, 0.0)}
        qos = composed.worst_path_qos(override)
        assert qos["delay"] == pytest.approx(260.0)  # 100 + 10 (link) + 150

    def test_worst_path_qos_takes_critical_path(self, catalog):
        dag = FunctionGraph.two_branch(
            catalog[0], [catalog[1]], [catalog[2]], catalog[3]
        )
        request = make_request(dag)
        assignment = {
            0: make_component(0, catalog[0], 0, delay=10.0),
            1: make_component(1, catalog[1], 1, delay=50.0),  # slow branch
            2: make_component(2, catalog[2], 2, delay=5.0),
            3: make_component(3, catalog[3], 0, delay=10.0),
        }
        links = {
            (0, 1): vl(0, 1, [0], delay=1.0),
            (0, 2): vl(0, 2, [1], delay=1.0),
            (1, 3): vl(1, 0, [2], delay=1.0),
            (2, 3): vl(2, 0, [3], delay=1.0),
        }
        composed = ComponentGraph(request, assignment, links)
        # critical path: 10 + 1 + 50 + 1 + 10
        assert composed.worst_path_qos()["delay"] == pytest.approx(72.0)


class TestCongestionAggregation:
    def test_fig4_style_example(self, catalog, graph):
        """Single-resource version of the paper's Fig. 4 arithmetic:
        φ = Σ r/available + Σ b/available_bw."""
        schema = ResourceSchema([ResourceSpec("memory")])
        request = make_request(graph, stream_rate=100.0, kbps_per_unit=2.0)
        request = request.__class__(
            request_id=0,
            function_graph=graph,
            qos_requirement=request.qos_requirement,
            node_requirements={
                0: ResourceVector(schema, [20.0]),
                1: ResourceVector(schema, [10.0]),
            },
            bandwidth_requirements={(0, 1): 200.0},
            stream_rate=100.0,
        )
        assignment = {
            0: make_component(0, catalog[0], 0),
            1: make_component(1, catalog[1], 1),
        }
        composed = ComponentGraph(
            request, assignment, {(0, 1): vl(0, 1, [7])}
        )
        phi = composed.congestion_aggregation(
            node_available=lambda n: ResourceVector(schema, [50.0 if n == 0 else 60.0]),
            link_available_bw=lambda e: 1000.0,
        )
        assert phi == pytest.approx(20 / 50 + 10 / 60 + 200 / 1000)

    def test_co_located_link_contributes_zero(self, catalog, graph):
        request = make_request(graph)
        assignment = {
            0: make_component(0, catalog[0], 4),
            1: make_component(1, catalog[1], 4),
        }
        composed = ComponentGraph(request, assignment, {(0, 1): vl(4, 4)})
        phi = composed.congestion_aggregation(
            node_available=lambda n: rv(100, 1000),
            link_available_bw=lambda e: pytest.fail("co-located link queried"),
        )
        # only the two node terms remain
        requirement = request.requirement_for(0)
        # co-location: each term sees availability minus the *other* demand
        expected = 2 * sum(
            r / (a - r)
            for r, a in zip(requirement.values, rv(100, 1000).values)
        )
        assert phi == pytest.approx(expected)

    def test_saturated_node_gives_inf(self, composed):
        phi = composed.congestion_aggregation(
            node_available=lambda n: rv(0, 0),
            link_available_bw=lambda e: 1000.0,
        )
        assert math.isinf(phi)

    def test_saturated_link_gives_inf(self, composed):
        phi = composed.congestion_aggregation(
            node_available=lambda n: rv(100, 1000),
            link_available_bw=lambda e: 0.0,
        )
        assert math.isinf(phi)

    def test_smaller_phi_on_less_loaded_nodes(self, composed):
        lighter = composed.congestion_aggregation(
            lambda n: rv(100, 1000), lambda e: 10_000.0
        )
        heavier = composed.congestion_aggregation(
            lambda n: rv(20, 100), lambda e: 10_000.0
        )
        assert lighter < heavier
