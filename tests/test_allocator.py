"""Unit tests for transient reservations and session allocation."""

import pytest

from repro.allocation.allocator import AdmissionError, ResourceAllocator
from repro.core.composer import CompositionEvaluator
from repro.model.function_graph import FunctionGraph
from tests.conftest import make_request, rv


@pytest.fixture
def allocator(micro_network, micro_router):
    return ResourceAllocator(micro_network, micro_router, transient_timeout_s=10.0)


@pytest.fixture
def components(micro_network):
    by_id = {}
    for node in micro_network.nodes:
        for component in node.components:
            by_id[component.component_id] = component
    return by_id


class TestTransientReservations:
    def test_reserve_consumes_resources(self, micro_network, allocator, components):
        assert allocator.reserve_component(1, components[0], rv(5, 20))
        assert micro_network.node(0).available == rv(95, 980)

    def test_idempotent_per_component(self, micro_network, allocator, components):
        allocator.reserve_component(1, components[0], rv(5, 20))
        assert allocator.reserve_component(1, components[0], rv(5, 20))
        # footnote 7: reserved once, not twice
        assert micro_network.node(0).available == rv(95, 980)

    def test_insufficient_resources_refused(self, allocator, components):
        assert not allocator.reserve_component(1, components[1], rv(500, 20))
        assert not allocator.has_reservation(1, 1)

    def test_available_excluding_adds_back_own_holdings(
        self, allocator, components
    ):
        allocator.reserve_component(1, components[0], rv(5, 20))
        assert allocator.available_excluding(1, 0) == rv(100, 1000)
        # a different request sees the reduced availability
        assert allocator.available_excluding(2, 0) == rv(95, 980)

    def test_cancel_releases_everything(self, micro_network, allocator, components):
        allocator.reserve_component(1, components[0], rv(5, 20))
        allocator.reserve_component(1, components[1], rv(5, 20))
        allocator.cancel_transient(1)
        assert micro_network.node(0).available == rv(100, 1000)
        assert micro_network.node(1).available == rv(50, 500)

    def test_cancel_unknown_request_is_noop(self, allocator):
        allocator.cancel_transient(42)  # must not raise

    def test_expiry(self, micro_network, allocator, components):
        allocator.reserve_component(1, components[0], rv(5, 20), now=0.0)
        assert allocator.expire_due(5.0) == []
        expired = allocator.expire_due(10.0)
        assert expired == [1]
        assert micro_network.node(0).available == rv(100, 1000)
        assert allocator.expired_reservations == 1

    def test_new_reservation_extends_deadline(self, allocator, components):
        allocator.reserve_component(1, components[0], rv(5, 20), now=0.0)
        allocator.reserve_component(1, components[1], rv(5, 20), now=8.0)
        assert allocator.expire_due(12.0) == []  # deadline moved to 18
        assert allocator.expire_due(18.0) == [1]


@pytest.fixture
def composition(catalog, micro_context):
    """F0→c0@v0, F1→c1@v1 composed through the evaluator."""
    graph = FunctionGraph.path([catalog[0], catalog[1]])
    request = make_request(graph, stream_rate=100.0, kbps_per_unit=2.0)
    evaluator = CompositionEvaluator(micro_context)
    registry = micro_context.registry
    assignment = {
        0: registry.component(0),
        1: registry.component(1),
    }
    return evaluator.build_component_graph(request, assignment)


class TestSessions:
    def test_commit_allocates_nodes_and_links(
        self, micro_network, allocator, composition
    ):
        allocation = allocator.commit(composition)
        assert micro_network.node(0).available == rv(95, 980)
        assert micro_network.node(1).available == rv(45, 480)
        # bandwidth on the overlay link v0-v1 (link 0): rate 100 * 0.6
        # selectivity of catalog[0] (filtering) * 2 kbps/unit
        expected_bw = composition.request.bandwidth_for((0, 1))
        assert micro_network.link(0).available_kbps == pytest.approx(
            10_000.0 - expected_bw
        )
        assert allocator.session(0) is allocation
        assert allocator.active_session_count == 1

    def test_commit_cancels_transient_first(
        self, micro_network, allocator, composition, components
    ):
        request_id = composition.request.request_id
        allocator.reserve_component(request_id, components[0], rv(5, 20))
        allocator.reserve_component(request_id, components[2], rv(5, 20))
        allocator.commit(composition)
        # the losing reservation on v2 was released
        assert micro_network.node(2).available == rv(100, 1000)

    def test_release_restores_everything(self, micro_network, allocator, composition):
        snapshot = [node.available for node in micro_network.nodes]
        bw_snapshot = [link.available_kbps for link in micro_network.links]
        allocation = allocator.commit(composition)
        allocator.release(allocation)
        assert [n.available for n in micro_network.nodes] == snapshot
        assert [l.available_kbps for l in micro_network.links] == bw_snapshot
        assert allocator.active_session_count == 0

    def test_double_release_rejected(self, allocator, composition):
        allocation = allocator.commit(composition)
        allocator.release(allocation)
        with pytest.raises(ValueError, match="already released"):
            allocator.release(allocation)

    def test_double_commit_rejected(self, allocator, composition):
        allocator.commit(composition)
        with pytest.raises(AdmissionError, match="already has a session"):
            allocator.commit(composition)

    def test_commit_insufficient_node_resources(
        self, micro_network, allocator, composition
    ):
        micro_network.node(1).allocate(rv(48, 490))  # nearly full
        with pytest.raises(AdmissionError, match="cannot admit"):
            allocator.commit(composition)
        # nothing leaked
        assert micro_network.node(0).available == rv(100, 1000)

    def test_commit_insufficient_bandwidth(
        self, micro_network, allocator, composition
    ):
        micro_network.link(0).allocate_bandwidth(9_990.0)
        with pytest.raises(AdmissionError, match="cannot admit"):
            allocator.commit(composition)
        assert micro_network.node(0).available == rv(100, 1000)
        assert micro_network.node(1).available == rv(50, 500)

    def test_co_located_composition_aggregates_node_demand(
        self, catalog, micro_context, allocator, micro_network
    ):
        graph = FunctionGraph.path([catalog[1]])
        request = make_request(graph, cpu=30.0, memory=100.0)
        evaluator = CompositionEvaluator(micro_context)
        assignment = {0: micro_context.registry.component(1)}
        composition = evaluator.build_component_graph(request, assignment)
        allocator.commit(composition)
        assert micro_network.node(1).available == rv(20, 400)

    def test_invalid_timeout(self, micro_network, micro_router):
        with pytest.raises(ValueError, match="timeout"):
            ResourceAllocator(micro_network, micro_router, transient_timeout_s=0.0)
