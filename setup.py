"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools lacks the PEP 660 editable-wheel path (it
needs the ``wheel`` package); pip falls back to the legacy
``setup.py develop`` route through this file.
"""

from setuptools import setup

setup()
