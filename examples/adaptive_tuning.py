#!/usr/bin/env python3
"""Adaptive probing-ratio tuning under a changing workload (Fig. 8 story).

Subjects one ACP deployment to the paper's dynamic load (40 → 80 → 60
requests/min) twice: once with a fixed probing ratio α = 0.3, once with the
self-tuning ratio targeting a success rate.  Prints both time series so the
control loop is visible: the ratio climbs when the load step depresses the
success rate, and falls back to cheaper probing once load recedes.

Run:  python examples/adaptive_tuning.py
"""

from repro.experiments import FAST_SCALE, format_fig8_table, run_fig8


def main() -> None:
    scale = FAST_SCALE
    print(
        f"dynamic workload over {scale.adaptability_duration_s / 60:.0f} "
        f"simulated minutes: 40 -> 80 -> 60 requests/min "
        f"(steps at 1/3 and 2/3 of the horizon)\n"
    )
    fixed, adaptive = run_fig8(scale=scale, seed=3)

    print(format_fig8_table(fixed))
    print()
    print(format_fig8_table(adaptive))
    print()

    fixed_rates = [s.success_rate for s in fixed.samples]
    adaptive_ratios = [s.probing_ratio for s in adaptive.samples]
    print(f"fixed ratio: success swings between "
          f"{100 * min(fixed_rates):.0f}% and {100 * max(fixed_rates):.0f}% "
          f"with no recourse.")
    print(f"adaptive: the tuner moved alpha between "
          f"{min(adaptive_ratios):.1f} and {max(adaptive_ratios):.1f} to "
          f"chase the {100 * adaptive.target_success_rate:.0f}% target — "
          f"probing is paid for only when the workload demands it.")


if __name__ == "__main__":
    main()
