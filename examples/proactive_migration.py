#!/usr/bin/env python3
"""Proactive reconfiguration: live session migration off sustained hotspots.

A diurnal load curve plus a regional flash crowd heats one corner of the
mesh: the composer keeps placing sessions near the spiking routers, those
nodes cross the migration high watermark, and every later request probing
them gets dropped at admission.  This example runs the same workload
twice — recovery-only, and recovery plus hotspot-driven live migration —
and shows what rebalancing buys and what it costs:

* per-minute node-utilisation spread (mean / p95 / max) around the spike,
  sampled identically in both runs, so the hotspot is visible heating up
  and — in the proactive run — draining;
* the migration ledger: sessions moved, paused-stream seconds, transfers
  aborted because the pause would blow the session's QoS slack
  (graceful degradation), and probe traffic spent planning;
* the outcome gap: composition success and p99 setup latency.

Run:  python examples/proactive_migration.py     (~1 minute)
"""

from dataclasses import replace

from repro.experiments import (
    DEFAULT_MIGRATION_PLAN,
    MIGRATION_FAULT_PLAN,
    default_spec,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import population_scenarios
from repro.experiments.runner import build_simulator
from repro.middleware import RecoveryPolicy
from repro.model.qos_model import LoadDependentQoSModel
from repro.simulation.population import TrafficEvent

SCALE = ExperimentScale(
    name="example",
    num_routers=800,
    duration_s=1800.0,  # 30 simulated minutes
    adaptability_duration_s=1800.0,
    sampling_period_s=60.0,
    optimal_max_explored=30_000,
)
SPIKE_START = 0.45 * SCALE.duration_s


def make_spec():
    profiles = population_scenarios(
        SCALE.duration_s, num_client_routers=SCALE.num_routers
    )
    skewed = replace(
        profiles["diurnal"],
        events=(
            TrafficEvent.regional_spike(
                start_s=SPIKE_START,
                peak_multiplier=4.0,
                region=(0, SCALE.num_routers // 4),
                ramp_s=0.05 * SCALE.duration_s,
                plateau_s=0.25 * SCALE.duration_s,
                decay_s=0.05 * SCALE.duration_s,
            ),
        ),
    ).scaled(0.75)
    return (
        default_spec(scale=SCALE, algorithm="ACP", num_nodes=400, seed=0)
        .with_qos("normal")
        .with_population(skewed)
        .with_faults(MIGRATION_FAULT_PLAN, RecoveryPolicy())
    )


def run(spec):
    """Run one arm, sampling the utilisation spread once per minute."""
    simulator = build_simulator(spec)
    spread = []

    def sample():
        loads = sorted(
            LoadDependentQoSModel.utilization(node.available, node.capacity)
            for node in simulator.system.network.nodes
            if node.alive
        )
        spread.append(
            (
                simulator.scheduler.now,
                sum(loads) / len(loads),
                loads[int(0.95 * (len(loads) - 1))],
                loads[-1],
            )
        )

    # the scheduler is public: ride a read-only probe alongside the run
    # (pure observation — it draws no randomness and changes no state)
    simulator.scheduler.schedule_periodic(60.0, sample, name="spread")
    report = simulator.run(spec.duration_s)
    return report, spread


def main() -> None:
    base = make_spec()
    print("running 30 simulated minutes twice (diurnal + 4x regional "
          "spike at t=810s)...\n")
    recover_only, spread_without = run(base)
    proactive, spread_with = run(base.with_migration(DEFAULT_MIGRATION_PLAN))

    print("node-utilisation spread, recover-only vs proactive "
          "(one row per 3 minutes):")
    print(f"{'t (s)':>6}  {'mean':>5} {'p95':>5} {'max':>5}   "
          f"{'mean':>5} {'p95':>5} {'max':>5}")
    for (t, mean0, p950, max0), (_, mean1, p951, max1) in list(
        zip(spread_without, spread_with)
    )[::3]:
        marker = "  <- spike" if SPIKE_START <= t <= 0.75 * SCALE.duration_s else ""
        print(f"{t:>6.0f}  {mean0:>5.2f} {p950:>5.2f} {max0:>5.2f}   "
              f"{mean1:>5.2f} {p951:>5.2f} {max1:>5.2f}{marker}")

    print()
    print("migration ledger (proactive run):")
    print(f"  sessions migrated        {proactive.sessions_migrated}")
    print(f"  paused-stream time       {proactive.migration_paused_stream_s:.1f} s")
    print(f"  aborted on QoS slack     {proactive.migrations_aborted_on_slack}")
    print(f"  planning probe messages  {proactive.migration_probe_messages}")

    print()
    print(f"{'':>24}  {'recover-only':>12}  {'proactive':>10}")
    print(f"{'requests':>24}  {recover_only.total_requests:>12}  "
          f"{proactive.total_requests:>10}")
    print(f"{'composition success':>24}  {100 * recover_only.success_rate:>11.1f}%  "
          f"{100 * proactive.success_rate:>9.1f}%")
    print(f"{'p99 setup latency':>24}  {recover_only.p99_setup_latency_ms:>10.1f}ms  "
          f"{proactive.p99_setup_latency_ms:>8.1f}ms")
    print(f"{'session survival':>24}  "
          f"{100 * recover_only.session_survival_rate:>11.1f}%  "
          f"{100 * proactive.session_survival_rate:>9.1f}%")

    print()
    print("the spike heats the busiest nodes past the 0.75 watermark in "
          "both runs; only the proactive run drains them, and every "
          "transfer it could not afford (pause > QoS slack) was refused "
          "and counted instead of silently degrading the stream.")


if __name__ == "__main__":
    main()
