#!/usr/bin/env python3
"""Quickstart: compose and run one stream processing application with ACP.

Builds a small distributed stream processing system (power-law IP topology,
overlay mesh, deployed components), submits one request through the paper's
session middleware (Find / Process / Close), and prints what happened at
every step:

* the function graph the request asks for,
* the component graph ACP composed for it (which components, which nodes,
  which overlay links),
* its congestion aggregation φ(λ) and end-to-end QoS,
* a Process() call pushing data units through the composed pipeline.

Run:  python examples/quickstart.py
"""

import random

from repro.core import ACPComposer
from repro.middleware import SessionManager
from repro.model import derive_bandwidth_requirements, QoSVector, ResourceVector
from repro.model.qos import DEFAULT_QOS_SCHEMA
from repro.model.request import StreamRequest
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA
from repro.simulation import SystemConfig, build_system


def main() -> None:
    # -- 1. build the distributed stream processing system -------------------
    config = SystemConfig(
        num_routers=400,  # IP-layer power-law graph (paper: 3200)
        num_nodes=60,  # stream processing overlay nodes
        seed=7,
    )
    system = build_system(config)
    print(f"system: {len(system.network)} overlay nodes, "
          f"{len(system.network.links)} overlay links, "
          f"{len(system.registry)} deployed components, "
          f"{len(system.catalog)} functions")
    print(f"mean candidates per function k = "
          f"{system.mean_candidates_per_function():.1f}")

    # -- 2. pick an application template and phrase a request ----------------
    template = system.templates[0]
    graph = template.graph
    print(f"\nrequest template: {template.name}")
    for node in graph.nodes:
        print(f"  F{node.index}: {node.function.name} "
              f"(selectivity {node.function.selectivity:g})")
    print(f"  dependency links: {graph.edges}")

    stream_rate = 100.0  # data units per second
    request = StreamRequest(
        request_id=0,
        function_graph=graph,
        qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, [400.0, 0.15]),
        node_requirements={
            i: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [4.0, 25.0])
            for i in range(len(graph))
        },
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, kbps_per_unit=2.0
        ),
        stream_rate=stream_rate,
        duration=600.0,
    )

    # -- 3. Find(): compose with ACP ------------------------------------------
    context = system.composition_context(rng=random.Random(1))
    composer = ACPComposer(context, probing_ratio=0.5)
    sessions = SessionManager(composer, system.allocator)

    session_id, outcome = sessions.find(request)
    if session_id is None:
        print(f"\ncomposition failed: {outcome.failure_reason}")
        return

    print(f"\ncomposition succeeded with {outcome.probe_messages} probe "
          f"messages ({outcome.explored} candidates examined)")
    composition = outcome.composition
    for index in sorted(range(len(graph))):
        component = composition.component(index)
        print(f"  F{index} -> c{component.component_id} on node "
              f"v{component.node_id} (delay {component.qos['delay']:.1f} ms)")
    for edge, link in sorted(composition.virtual_links.items()):
        if link.co_located:
            print(f"  link {edge}: co-located (0 ms)")
        else:
            print(f"  link {edge}: {len(link.overlay_link_ids)} overlay hops, "
                  f"{link.qos['delay']:.1f} ms")
    print(f"  congestion aggregation phi = {outcome.phi:.3f}")
    worst = composer.evaluator.worst_effective_qos(composition)
    print(f"  end-to-end QoS: {worst['delay']:.1f} ms delay, "
          f"{100 * worst['loss_rate']:.2f}% loss "
          f"(budget {request.qos_requirement['delay']:.0f} ms / "
          f"{100 * request.qos_requirement['loss_rate']:.1f}%)")

    # -- 4. Process(): push data through the composed application -------------
    result = sessions.process(session_id, units_in=10_000.0)
    print(f"\nProcess(): {result.units_in:.0f} units in -> "
          f"{result.units_out:.0f} units out "
          f"(expected delay {result.expected_delay_ms:.1f} ms, "
          f"loss {100 * result.expected_loss_rate:.2f}%)")

    # -- 5. Close(): tear the session down -------------------------------------
    sessions.close(session_id)
    print(f"Close(): session {session_id} released; "
          f"active sessions = {sessions.active_session_count}")


if __name__ == "__main__":
    main()
