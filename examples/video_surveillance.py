#!/usr/bin/env python3
"""Video surveillance: the paper's Fig. 1(c) application, hand-built.

The paper motivates composition with a multimedia surveillance pipeline: a
split stage fans a camera stream out to a voice-recognition branch and a
face-recognition branch whose verdicts merge in a correlation stage.  This
example builds exactly that two-branch DAG from catalog functions, submits
a batch of surveillance sessions through ACP, and shows

* how DAG probing merges branch assignments into one component graph,
* how co-location shows up (zero-delay virtual links), and
* how the system's load balancing spreads concurrent sessions over nodes.

Run:  python examples/video_surveillance.py
"""

import collections
import random

from repro.core import ACPComposer
from repro.middleware import SessionManager
from repro.model import (
    FunctionGraph,
    QoSVector,
    ResourceVector,
    StreamRequest,
    derive_bandwidth_requirements,
)
from repro.model.qos import DEFAULT_QOS_SCHEMA
from repro.model.resources import DEFAULT_RESOURCE_SCHEMA
from repro.simulation import SystemConfig, build_system


def build_surveillance_graph(catalog) -> FunctionGraph:
    """source split -> (voice branch | face branch) -> correlation join.

    Catalog categories stand in for the paper's named stages: the analysis
    functions play the recognisers, a transformation stage decodes, and a
    correlation stage joins the verdicts.
    """
    split = catalog.by_name("transformation-00")  # media demux
    voice_decode = catalog.by_name("compression-00")  # audio decode
    voice_recognise = catalog.by_name("analysis-00")  # voice recognition
    face_decode = catalog.by_name("compression-01")  # video decode
    face_recognise = catalog.by_name("analysis-01")  # face recognition
    join = catalog.by_name("correlation-00")  # verdict correlation
    return FunctionGraph.two_branch(
        split,
        [voice_decode, voice_recognise],
        [face_decode, face_recognise],
        join,
    )


def surveillance_request(request_id: int, graph: FunctionGraph) -> StreamRequest:
    stream_rate = 120.0  # frames+samples per second
    return StreamRequest(
        request_id=request_id,
        function_graph=graph,
        qos_requirement=QoSVector(DEFAULT_QOS_SCHEMA, [450.0, 0.12]),
        node_requirements={
            i: ResourceVector(DEFAULT_RESOURCE_SCHEMA, [5.0, 30.0])
            for i in range(len(graph))
        },
        bandwidth_requirements=derive_bandwidth_requirements(
            graph, stream_rate, kbps_per_unit=4.0  # video-grade streams
        ),
        stream_rate=stream_rate,
        duration=900.0,
    )


def main() -> None:
    system = build_system(SystemConfig(num_routers=400, num_nodes=80, seed=11))
    graph = build_surveillance_graph(system.catalog)
    print("surveillance pipeline:")
    for node in graph.nodes:
        role = {0: "split", len(graph) - 1: "correlate"}.get(node.index, "branch")
        print(f"  F{node.index} ({role}): {node.function.name}")
    print(f"  edges: {graph.edges}")
    print(f"  branch paths: {[list(p) for p in graph.all_paths()]}")

    context = system.composition_context(rng=random.Random(5))
    composer = ACPComposer(context, probing_ratio=0.5)
    sessions = SessionManager(composer, system.allocator)

    # admit a batch of concurrent camera feeds
    placements = collections.Counter()
    admitted = 0
    cameras = 25
    for camera in range(cameras):
        request = surveillance_request(camera, graph)
        session_id, outcome = sessions.find(request)
        if session_id is None:
            continue
        admitted += 1
        for index in range(len(graph)):
            placements[outcome.composition.component(index).node_id] += 1
        if camera == 0:
            print(f"\nfirst camera composed (phi = {outcome.phi:.3f}):")
            for index in range(len(graph)):
                component = outcome.composition.component(index)
                print(f"  F{index} -> c{component.component_id}@v{component.node_id}")
            co_located = [
                edge
                for edge, link in outcome.composition.virtual_links.items()
                if link.co_located
            ]
            print(f"  co-located stage pairs: {co_located or 'none'}")

    print(f"\nadmitted {admitted}/{cameras} camera feeds")
    print(f"distinct nodes carrying surveillance load: {len(placements)}")
    busiest = placements.most_common(3)
    print(f"busiest nodes (components hosted): {busiest}")
    spread = len(placements) / (admitted * len(graph) / len(system.network))
    print(f"load spread factor vs single-node packing: {spread:.1f}x")

    # push one second of media through every admitted session
    total_out = 0.0
    for session_id in range(1, admitted + 1):
        result = sessions.process(session_id, units_in=120.0)
        total_out += result.units_out
    print(f"\nprocessed one second of media on every feed: "
          f"{total_out:.0f} correlated verdicts emitted")


if __name__ == "__main__":
    main()
