#!/usr/bin/env python3
"""Failure resilience: composition under node churn.

The paper connects nodes "into an overlay mesh" *for failure resilience*.
This example makes that concrete: it runs the same workload twice on the
same system — once on a stable system, once with stochastic node crashes
and recoveries — and reports what churn costs:

* sessions killed mid-flight when their host crashes,
* composition success (ACP routes probes around dead nodes and relays), and
* how the overlay re-routes virtual links around crashed relay nodes.

Run:  python examples/failure_resilience.py
"""

import random

from repro.core import ACPComposer
from repro.simulation import (
    FailureInjector,
    RateSchedule,
    StreamProcessingSimulator,
    SystemConfig,
    WorkloadGenerator,
    build_system,
)
from repro.discovery import DeploymentProfile


def run(with_failures: bool):
    config = SystemConfig(
        num_routers=400,
        num_nodes=100,
        deployment=DeploymentProfile(components_per_node=(2, 3)),
        seed=21,
    )
    system = build_system(config)
    injector = None
    if with_failures:
        injector = FailureInjector(
            system.network,
            system.router,
            fail_probability=0.03,  # per node per minute round
            recover_probability=0.5,
            period_s=60.0,
            rng=random.Random(22),
        )
    workload = WorkloadGenerator(
        system.templates,
        RateSchedule.constant(25.0),
        num_client_routers=config.num_routers,
        seed=23,
    )
    composer = ACPComposer(
        system.composition_context(rng=random.Random(24)), probing_ratio=0.5
    )
    simulator = StreamProcessingSimulator(
        system, composer, workload, sampling_period_s=300.0, failures=injector
    )
    report = simulator.run(1800.0)  # 30 simulated minutes
    return report, injector


def main() -> None:
    print("running 30 simulated minutes at 40 requests/min, twice...\n")
    stable, _ = run(with_failures=False)
    churned, injector = run(with_failures=True)

    crashes = [e for e in injector.events if e.kind == "crash"]
    recoveries = [e for e in injector.events if e.kind == "recover"]
    print(f"churn injected: {len(crashes)} crashes, {len(recoveries)} "
          f"recoveries, {injector.sessions_killed} running sessions killed")
    print(f"worst simultaneous outage: "
          f"{max((len(injector.down_nodes),)) } nodes down at the end, "
          f"cap {injector.max_concurrent_failures}")
    # a killed session consumed resources and still failed its user: count
    # *completed* service, not just composition admissions
    stable_completed = stable.successes
    churn_completed = churned.successes - injector.sessions_killed
    print()
    print(f"{'':>24}  {'stable':>8}  {'under churn':>11}")
    print(f"{'requests':>24}  {stable.total_requests:>8}  "
          f"{churned.total_requests:>11}")
    print(f"{'composition success':>24}  {100 * stable.success_rate:>7.1f}%  "
          f"{100 * churned.success_rate:>10.1f}%")
    print(f"{'sessions completed':>24}  {stable_completed:>8}  "
          f"{churn_completed:>11}")
    print(f"{'probe msgs/min':>24}  {stable.probe_messages_per_min:>8.0f}  "
          f"{churned.probe_messages_per_min:>11.0f}")
    print()
    lost = stable_completed - churn_completed
    print(f"churn destroyed {injector.sessions_killed} running sessions "
          f"({lost} fewer completions than the stable run); note that "
          f"*composition* success can even rise under churn — killed "
          f"sessions free resources — which is why completed service is "
          f"the honest resilience metric.  Every composition that did "
          f"succeed was placed entirely on live nodes, with virtual links "
          f"re-routed around crashed relays.")


if __name__ == "__main__":
    main()
