#!/usr/bin/env python3
"""Algorithm comparison: all six composition algorithms on one workload.

Runs the paper's six algorithms — Optimal, ACP, SP, RP, Random, Static —
over identical systems and identical request sequences (same seeds) and
prints the whole-run comparison: success rate, probe overhead, state
maintenance overhead, and mean congestion aggregation of the selected
compositions.  This is a single point of the Fig. 6 sweep; the optimal
algorithm's exhaustive search dominates the few minutes of wall time.

Run:  python examples/algorithm_comparison.py
"""

from repro.experiments import (
    ALGORITHMS,
    FAST_SCALE,
    default_spec,
    format_report_summary,
    run_spec,
)


def main() -> None:
    spec = default_spec(
        scale=FAST_SCALE,
        num_nodes=200,
        rate_per_min=60.0,
        seed=2,
    )
    print(
        f"system: {spec.system.num_nodes} nodes, "
        f"workload: {spec.schedule.rate_at(0):g} requests/min for "
        f"{spec.duration_s / 60:.0f} simulated minutes, "
        f"probing ratio {spec.probing_ratio}"
    )
    print("running all six algorithms on identical request sequences...\n")

    reports = []
    for algorithm in ALGORITHMS:
        report = run_spec(spec.with_algorithm(algorithm))
        reports.append(report)
        print(f"  {algorithm}: done ({report.total_requests} requests)")

    print()
    print(format_report_summary(reports))
    print()

    by_name = {report.algorithm: report for report in reports}
    acp, optimal, rp = by_name["ACP"], by_name["Optimal"], by_name["RP"]
    reduction = 100.0 * (1.0 - acp.overhead_per_min / optimal.overhead_per_min)
    print(f"ACP reaches {100 * acp.success_rate:.1f}% success vs the optimal "
          f"algorithm's {100 * optimal.success_rate:.1f}% while sending "
          f"{reduction:.0f}% fewer messages.")
    print(f"Against RP (fully distributed), ACP pays "
          f"{acp.state_messages_per_min:.0f} state msgs/min for "
          f"{100 * (acp.success_rate - rp.success_rate):.1f} extra success "
          f"points — the paper's hybrid-approach trade.")


if __name__ == "__main__":
    main()
