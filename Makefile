# Convenience entry points; everything runs with src/ on PYTHONPATH so no
# install step is needed.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test lint check docs-seeds bench bench-micro bench-macro bench-faults bench-scale bench-scale-smoke bench-population bench-population-smoke bench-migration bench-migration-smoke trace-demo

test:
	$(PYTEST) -x -q tests

# The aggregate PR gate: static analysis (repro-lint always; mypy/ruff
# when installed) then the tier-1 suite.  One command == what CI enforces.
check: lint test

# Regenerate the DEVELOPMENT.md seed-slot table from
# repro.analysis.seeds.REGISTRY (the doc-drift test fails when they
# diverge; run this after claiming a new slot).
docs-seeds:
	PYTHONPATH=src python -c "from repro.analysis.docs import sync_seed_table; \
		changed = sync_seed_table('DEVELOPMENT.md'); \
		print('DEVELOPMENT.md seed-slot table ' + ('updated' if changed else 'already in sync'))"

# Static analysis gate (see DEVELOPMENT.md).  repro-lint (the in-tree
# determinism/layering/recorder-discipline checker) always runs; mypy and
# ruff run when installed and are skipped with a notice otherwise, so the
# target works in offline environments with only the runtime deps.
lint:
	PYTHONPATH=src python -m repro.analysis src/repro --src-root src
	@if python -c "import mypy" 2>/dev/null; then \
		python -m mypy; \
	else \
		echo "lint: mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi
	@if python -c "import ruff" 2>/dev/null; then \
		python -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi

# Statistical micro-benchmarks of the per-request hot operations.  Medians
# land in benchmarks/results/BENCH_micro.json (operation -> seconds); the
# vectorised-scoring speedup is test_acp_compose_latency_scalar divided by
# test_acp_compose_latency.  The observability overhead guard rides along:
# it proves the disabled-trace path costs <= 5% of a compose
# (benchmarks/results/BENCH_observability.json).
bench-micro:
	$(PYTEST) -q benchmarks/test_micro_operations.py benchmarks/test_observability_overhead.py
	@echo "medians: benchmarks/results/BENCH_micro.json"
	@echo "overhead guard: benchmarks/results/BENCH_observability.json"

# One traced adaptive simulation: exports a JSONL trace and renders its
# summary (wavefront, tuner decisions, cache hit rates, phase timings).
trace-demo:
	PYTHONPATH=src python -m repro.cli trace --nodes 100 --rate 40 \
		--adaptive --duration 900 \
		--trace-out benchmarks/results/trace_demo.jsonl
	PYTHONPATH=src python -m repro.cli trace-summary benchmarks/results/trace_demo.jsonl

# Macro churn benchmark: one Fig. 8-style simulation (dynamic load +
# stochastic failures) timed with eager vs incremental routing.  Timings
# land in benchmarks/results/BENCH_macro.json; the run asserts the two
# modes make identical decisions and that incremental is >= 2x faster.
bench-macro:
	$(PYTEST) -q -s benchmarks/test_macro_churn.py
	@echo "timings: benchmarks/results/BENCH_macro.json"

# Scale curve: compose p50/p99, overlay build time, and per-subsystem
# memory at N in {600, 2k, 5k, 10k, 50k} overlay nodes under the bounded
# configuration (LRU router caches, deduped batched topology build,
# locality-pruned candidate scoring at candidate_prune_k=auto), plus a
# prune-k ablation at N=5k.  Results land in
# benchmarks/results/BENCH_scale.json; EXPERIMENTS.md's Scalability
# section quotes them.  Budget ~1 hour on one core (the 50k point
# dominates); override the prune setting with BENCH_SCALE_PRUNE.
bench-scale:
	$(PYTEST) -q -s benchmarks/test_scale.py
	@echo "curve: benchmarks/results/BENCH_scale.json"

# Same harness at whatever N the caller sets via BENCH_SCALE_NODES
# (comma-separated); writes BENCH_scale_smoke.json so a smoke run can
# never clobber the committed full curve.  CI runs this at a small N
# with candidate_prune_k=auto so the pruned gather and widen counters
# are exercised on every push.
bench-scale-smoke:
	BENCH_SCALE_NODES=$${BENCH_SCALE_NODES:-300} $(PYTEST) -q -s benchmarks/test_scale.py
	@echo "smoke point: benchmarks/results/BENCH_scale_smoke.json"

# Fault-tolerance macro benchmark: the same Fig. 8-style simulation run
# under the full fault cocktail (node crashes, link flaps, lossy control
# plane, state-update loss) with and without crash-triggered session
# re-composition.  Survival figures land in
# benchmarks/results/BENCH_faults.json; the run asserts the resilient
# mode's session survival rate strictly exceeds the kill-on-fault
# baseline and that a zero-fault plan is decision-identical to no plan.
bench-faults:
	$(PYTEST) -q -s benchmarks/test_macro_faults.py
	@echo "survival: benchmarks/results/BENCH_faults.json"

# Population-scale workload sweep: the standard scenario set (steady,
# diurnal, flash_crowd) across 1x/10x/100x load multipliers on the mean
# active population.  Per-window SLO series (success, p50/p99 setup
# latency, admission pressure, session/queue gauges) land in
# benchmarks/results/BENCH_population.json; the run asserts the steady
# baseline is healthy at 1x and that 100x overload is non-degenerate
# (failures under contention, sessions piling up, no crash).  ~3 minutes.
bench-population:
	$(PYTEST) -q -s benchmarks/test_population.py
	@echo "sweep: benchmarks/results/BENCH_population.json"

# Same harness at whatever multipliers the caller sets via
# BENCH_POPULATION_MULTIPLIERS (comma-separated); writes
# BENCH_population_smoke.json so a smoke run can never clobber the
# committed full sweep.  CI runs this at 1x/10x on every push.
bench-population-smoke:
	BENCH_POPULATION_MULTIPLIERS=$${BENCH_POPULATION_MULTIPLIERS:-1,10} $(PYTEST) -q -s benchmarks/test_population.py
	@echo "smoke sweep: benchmarks/results/BENCH_population_smoke.json"

# Proactive-reconfiguration macro benchmark: the same diurnal +
# regional-spike simulation with crash recovery alone vs recovery plus
# hotspot-driven live session migration.  Figures (success, p99 setup,
# survival, and the migration cost ledger — paused-stream seconds, slack
# aborts, probe traffic) land in benchmarks/results/BENCH_migration.json;
# the run asserts proactive strictly beats recover-only on success rate
# with p99 no worse, that the costs were actually paid, and that a zero
# migration plan is decision-identical to no plan.  ~3 minutes.
bench-migration:
	$(PYTEST) -q -s benchmarks/test_macro_migration.py
	@echo "migration: benchmarks/results/BENCH_migration.json"

# Same harness at whatever horizon/system size the caller sets via
# BENCH_MIGRATION_DURATION / BENCH_MIGRATION_NODES; writes
# BENCH_migration_smoke.json so a smoke run can never clobber the
# committed full result.  CI runs a short horizon on every push.
bench-migration-smoke:
	BENCH_MIGRATION_DURATION=$${BENCH_MIGRATION_DURATION:-300} \
	BENCH_MIGRATION_NODES=$${BENCH_MIGRATION_NODES:-120} \
	$(PYTEST) -q -s benchmarks/test_macro_migration.py
	@echo "smoke: benchmarks/results/BENCH_migration_smoke.json"

# Full benchmark suite: every figure harness at FAST_SCALE plus the micro
# operations.  Figure rows land in benchmarks/results/*.txt.  The ~10-min
# scale curve is excluded; run it explicitly with bench-scale.
bench:
	$(PYTEST) -q --ignore=benchmarks/test_scale.py benchmarks
