# Convenience entry points; everything runs with src/ on PYTHONPATH so no
# install step is needed.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench bench-micro bench-macro

test:
	$(PYTEST) -x -q tests

# Statistical micro-benchmarks of the per-request hot operations.  Medians
# land in benchmarks/results/BENCH_micro.json (operation -> seconds); the
# vectorised-scoring speedup is test_acp_compose_latency_scalar divided by
# test_acp_compose_latency.
bench-micro:
	$(PYTEST) -q benchmarks/test_micro_operations.py
	@echo "medians: benchmarks/results/BENCH_micro.json"

# Macro churn benchmark: one Fig. 8-style simulation (dynamic load +
# stochastic failures) timed with eager vs incremental routing.  Timings
# land in benchmarks/results/BENCH_macro.json; the run asserts the two
# modes make identical decisions and that incremental is >= 2x faster.
bench-macro:
	$(PYTEST) -q -s benchmarks/test_macro_churn.py
	@echo "timings: benchmarks/results/BENCH_macro.json"

# Full benchmark suite: every figure harness at FAST_SCALE plus the micro
# operations.  Figure rows land in benchmarks/results/*.txt.
bench:
	$(PYTEST) -q benchmarks
